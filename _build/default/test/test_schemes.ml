(* Scheme-level behaviour: each ordering scheme must turn the four
   structural changes into its own persistence discipline. These tests
   observe the driver/disk traffic produced by single operations. *)
open Su_sim
open Su_fs
open Su_fstypes

let mk scheme =
  let cfg =
    { (Fs.config ~scheme ()) with
      Fs.geom = Geom.small;
      cache_mb = 8;
      keep_trace_records = true }
  in
  Fs.make cfg

let in_world w f =
  let r = ref None in
  ignore
    (Proc.spawn w.Fs.engine ~name:"t" (fun () ->
         r := Some (f ());
         Fs.stop w));
  Engine.run w.Fs.engine;
  Option.get !r

let writes w = Su_driver.Trace.writes (Su_driver.Driver.trace w.Fs.driver)
let records w = Su_driver.Trace.records (Su_driver.Driver.trace w.Fs.driver)

(* --- conventional ------------------------------------------------------ *)

let test_conventional_create_syncs () =
  let w = mk Fs.Conventional in
  in_world w (fun () ->
      let st = w.Fs.st in
      let before = writes w in
      Fsops.create st "/f";
      (* inode block and directory block are written synchronously
         before the call returns *)
      Alcotest.(check bool) "two sync writes" true (writes w - before >= 2));
  let sync_writes =
    List.filter
      (fun (r : Su_driver.Trace.record) ->
        r.Su_driver.Trace.r_sync && r.Su_driver.Trace.r_kind = Su_driver.Request.Write)
      (records w)
  in
  Alcotest.(check bool) "marked synchronous" true (List.length sync_writes >= 2)

let test_conventional_remove_order () =
  (* on the disk, the directory block (entry gone) must be written
     before the inode block (cleared dinode) *)
  let w = mk Fs.Conventional in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.append st "/f" ~bytes:1024;
      Fsops.sync st;
      Su_driver.Driver.reset_trace w.Fs.driver;
      Fsops.unlink st "/f");
  let g = Geom.small in
  let root_dir_block = fst (Geom.cg_data_area g 0) in
  let inode_block = Geom.inode_block_frag g 3 in
  let order =
    List.filter_map
      (fun (r : Su_driver.Trace.record) ->
        if r.Su_driver.Trace.r_kind = Su_driver.Request.Write then
          Some r.Su_driver.Trace.r_lbn
        else None)
      (records w)
  in
  let rec index i = function
    | [] -> -1
    | x :: rest -> if x = i then 0 else 1 + index i rest
  in
  let di = index root_dir_block order and ii = index inode_block order in
  Alcotest.(check bool) "dir write happened" true (di >= 0);
  Alcotest.(check bool) "inode write happened" true (ii >= 0);
  Alcotest.(check bool) "dir before inode" true (di < ii)

(* --- scheduler flag ----------------------------------------------------- *)

let test_flag_create_async_flagged () =
  let w = mk Fs.Scheduler_flag in
  let elapsed =
    in_world w (fun () ->
        let st = w.Fs.st in
        let t0 = Engine.now w.Fs.engine in
        Fsops.create st "/f";
        Engine.now w.Fs.engine -. t0)
  in
  (* the create does not wait for the disk: only CPU time passes *)
  Alcotest.(check bool) "no disk wait" true (elapsed < 0.05);
  let flagged =
    (* flags are not in the trace; infer from the request count: the
       inode write was issued immediately *)
    writes w
  in
  Alcotest.(check bool) "writes issued" true (flagged >= 1)

let test_flag_ordering_on_disk () =
  (* crash right after the create traffic: if the directory entry made
     it to disk, the inode must have too (Part semantics) *)
  let w = mk Fs.Scheduler_flag in
  ignore
    (Proc.spawn w.Fs.engine ~name:"t" (fun () ->
         let st = w.Fs.st in
         for i = 1 to 30 do
           Fsops.create st (Printf.sprintf "/f%d" i)
         done));
  (* crash at several points; at each, fsck must hold *)
  List.iter
    (fun t ->
      Engine.run ~until:t w.Fs.engine;
      let image = Su_disk.Disk.image_snapshot w.Fs.disk in
      let r = Fsck.check ~geom:Geom.small ~image ~check_exposure:false in
      Alcotest.(check bool)
        (Printf.sprintf "consistent at %.2f" t)
        true (Fsck.ok r))
    [ 0.01; 0.05; 0.1; 0.3; 1.0; 2.0 ]

(* --- scheduler chains ---------------------------------------------------- *)

let test_chains_deps_attached () =
  let w = mk (Fs.Scheduler_chains { barrier_dealloc = false }) in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      (* the directory buffer carries a dependency on the inode write *)
      let g = Geom.small in
      let root_dir_block = fst (Geom.cg_data_area g 0) in
      match Su_cache.Bcache.lookup w.Fs.cache root_dir_block with
      | Some b ->
        Alcotest.(check bool) "dir has wdeps" true (b.Su_cache.Buf.wdeps <> [])
      | None -> Alcotest.fail "root dir block not cached")

let test_chains_reuse_deps () =
  let w = mk (Fs.Scheduler_chains { barrier_dealloc = false }) in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/a";
      Fsops.append st "/a" ~bytes:8192;
      Fsops.unlink st "/a";
      (* the freed fragments are immediately reusable, but the scheme
         remembers which request must complete first *)
      let scheme = st.State.scheme in
      let deps = ref [] in
      (* probe: ask for reuse deps over the whole data area *)
      let g = Geom.small in
      let dfirst, dcount = Geom.cg_data_area g 0 in
      deps := scheme.Su_core.Scheme_intf.reuse_frag_deps [ (dfirst, min dcount 512) ];
      Alcotest.(check bool) "pending reuse dependency" true (!deps <> []))

(* --- soft updates -------------------------------------------------------- *)

let soft_world () =
  let w = mk Fs.Soft_updates in
  (w, Option.get w.Fs.st.State.softdep_stats)

let test_soft_create_no_sync_wait () =
  let w, _ = soft_world () in
  let elapsed =
    in_world w (fun () ->
        let st = w.Fs.st in
        let t0 = Engine.now w.Fs.engine in
        for i = 1 to 10 do
          Fsops.create st (Printf.sprintf "/f%d" i)
        done;
        Engine.now w.Fs.engine -. t0)
  in
  Alcotest.(check bool) "creates at memory speed" true (elapsed < 0.2);
  (* nothing needs to be written synchronously *)
  Alcotest.(check int) "no writes yet" 0 (writes w)

let test_soft_rollback_on_early_flush () =
  (* force the directory block out before the inode: the written copy
     must have the new entry rolled back *)
  let w, stats = soft_world () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      let g = Geom.small in
      let root_dir_block = fst (Geom.cg_data_area g 0) in
      let b = Option.get (Su_cache.Bcache.lookup w.Fs.cache root_dir_block) in
      ignore (Su_cache.Bcache.bawrite w.Fs.cache b);
      Su_cache.Bcache.wait_write w.Fs.cache b;
      (* on disk: entry absent; in memory: entry present *)
      (match Su_disk.Disk.peek w.Fs.disk root_dir_block with
       | Types.Meta (Types.Dir entries) ->
         Alcotest.(check bool) "entry rolled back on disk" true
           (Types.dir_find entries "f" = None)
       | _ -> Alcotest.fail "dir block unreadable");
      Alcotest.(check bool) "buffer still dirty" true b.Su_cache.Buf.dirty;
      Alcotest.(check bool) "rollback counted" true
        (stats.Su_core.Softdep.rollbacks >= 1);
      (* now write the inode block, then the directory again: the
         entry must appear *)
      Fsops.sync st;
      (match Su_disk.Disk.peek w.Fs.disk root_dir_block with
       | Types.Meta (Types.Dir entries) ->
         Alcotest.(check bool) "entry on disk after sync" true
           (Types.dir_find entries "f" <> None)
       | _ -> Alcotest.fail "dir block unreadable"))

let test_soft_deferred_free () =
  (* freed blocks must not be reusable until the reset pointers are on
     disk: allocation totals only recover after a sync *)
  let w, _ = soft_world () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.append st "/f" ~bytes:16384;
      Fsops.sync st;
      let free_before = Alloc.free_frags_total st in
      Fsops.unlink st "/f";
      let free_mid = Alloc.free_frags_total st in
      Alcotest.(check bool) "not freed immediately" true (free_mid <= free_before);
      Fsops.sync st;
      let free_after = Alloc.free_frags_total st in
      Alcotest.(check bool) "freed after dependencies settle" true
        (free_after >= free_before + 16))

let test_soft_indirect_safe_copy () =
  (* a file spanning the indirect block: flushing the indirect block
     early writes the safe copy (no pointers to uninitialised data) *)
  let w, _ = soft_world () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/big";
      Fsops.append st "/big" ~bytes:(14 * 8192);
      let inum = Fsops.resolve st "/big" in
      let ip = Inode.iget st inum in
      let ib = ip.State.din.Types.ib in
      Alcotest.(check bool) "indirect allocated" true (ib <> 0);
      let b = Option.get (Su_cache.Bcache.lookup w.Fs.cache ib) in
      Alcotest.(check bool) "pinned while pending" true b.Su_cache.Buf.sticky;
      ignore (Su_cache.Bcache.bawrite w.Fs.cache b);
      Su_cache.Bcache.wait_write w.Fs.cache b;
      (match Su_disk.Disk.peek w.Fs.disk ib with
       | Types.Meta (Types.Indirect arr) ->
         (* data blocks are not yet on disk: safe copy has no pointers *)
         Alcotest.(check int) "safe copy written" 0 arr.(0)
       | _ -> Alcotest.fail "indirect unreadable");
      Fsops.sync st;
      (match Su_disk.Disk.peek w.Fs.disk ib with
       | Types.Meta (Types.Indirect arr) ->
         Alcotest.(check bool) "pointers after sync" true (arr.(0) <> 0)
       | _ -> Alcotest.fail "indirect unreadable");
      Alcotest.(check bool) "unpinned when settled" true
        (not b.Su_cache.Buf.sticky);
      Inode.iput st ip)

let test_soft_deferred_decrement () =
  (* unlink defers the link-count decrement until the directory write
     completes (via the syncer workitem queue) *)
  let w, _ = soft_world () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.link st ~src:"/f" ~dst:"/g";
      Fsops.sync st;
      Alcotest.(check int) "nlink 2" 2 (Fsops.stat st "/f").Fsops.st_nlink;
      Fsops.unlink st "/g";
      (* before the directory block reaches the disk, the in-core link
         count is untouched *)
      Alcotest.(check int) "decrement deferred" 2
        (Fsops.stat st "/f").Fsops.st_nlink;
      Fsops.sync st;
      Alcotest.(check int) "decrement applied" 1
        (Fsops.stat st "/f").Fsops.st_nlink)

let test_soft_workitems_flow () =
  let w, stats = soft_world () in
  in_world w (fun () ->
      let st = w.Fs.st in
      for i = 1 to 5 do
        let p = Printf.sprintf "/f%d" i in
        Fsops.create st p;
        Fsops.append st p ~bytes:4096
      done;
      for i = 1 to 5 do
        Fsops.unlink st (Printf.sprintf "/f%d" i)
      done;
      Fsops.sync st;
      Alcotest.(check bool) "workitems processed" true
        (stats.Su_core.Softdep.workitems > 0);
      Alcotest.(check bool) "records created" true
        (stats.Su_core.Softdep.created > 10))

(* --- no order ------------------------------------------------------------ *)

let test_no_order_never_blocks () =
  let w = mk Fs.No_order in
  let elapsed =
    in_world w (fun () ->
        let st = w.Fs.st in
        let t0 = Engine.now w.Fs.engine in
        for i = 1 to 20 do
          let p = Printf.sprintf "/f%d" i in
          Fsops.create st p;
          Fsops.append st p ~bytes:2048;
          Fsops.unlink st p
        done;
        Engine.now w.Fs.engine -. t0)
  in
  Alcotest.(check int) "no writes at all" 0 (writes w);
  Alcotest.(check bool) "memory speed" true (elapsed < 0.5)

let suite =
  [
    Alcotest.test_case "conventional create syncs" `Quick
      test_conventional_create_syncs;
    Alcotest.test_case "conventional remove order" `Quick
      test_conventional_remove_order;
    Alcotest.test_case "flag create async" `Quick test_flag_create_async_flagged;
    Alcotest.test_case "flag ordering on disk" `Quick test_flag_ordering_on_disk;
    Alcotest.test_case "chains deps attached" `Quick test_chains_deps_attached;
    Alcotest.test_case "chains reuse deps" `Quick test_chains_reuse_deps;
    Alcotest.test_case "soft create no wait" `Quick test_soft_create_no_sync_wait;
    Alcotest.test_case "soft rollback on early flush" `Quick
      test_soft_rollback_on_early_flush;
    Alcotest.test_case "soft deferred free" `Quick test_soft_deferred_free;
    Alcotest.test_case "soft indirect safe copy" `Quick
      test_soft_indirect_safe_copy;
    Alcotest.test_case "soft deferred decrement" `Quick
      test_soft_deferred_decrement;
    Alcotest.test_case "soft workitems flow" `Quick test_soft_workitems_flow;
    Alcotest.test_case "no order never blocks" `Quick test_no_order_never_blocks;
  ]
