(* Integration tests: the file system mounted with each ordering
   scheme, plus fsck and crash-consistency checks. *)
open Su_sim
open Su_fs

let small_config scheme =
  { (Fs.config ~scheme ()) with Fs.geom = Su_fstypes.Geom.small; cache_mb = 8 }

let run_world w f =
  let result = ref None in
  let _p =
    Proc.spawn w.Fs.engine ~name:"test" (fun () ->
        result := Some (f ());
        Fs.stop w)
  in
  Engine.run w.Fs.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "world did not finish"

let with_scheme scheme f =
  let w = Fs.make (small_config scheme) in
  run_world w (fun () -> f w)

let fsck_now w =
  (* everything flushed: the image must be perfectly consistent *)
  Fsops.sync w.Fs.st;
  let report =
    Fsck.check ~geom:w.Fs.cfg.Fs.geom
      ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
      ~check_exposure:w.Fs.cfg.Fs.alloc_init
  in
  report

let check_clean w msg =
  let r = fsck_now w in
  if not (Fsck.ok r) then
    List.iter
      (fun v -> Format.eprintf "%s: %a@." msg Fsck.pp_violation v)
      r.Fsck.violations;
  Alcotest.(check bool) (msg ^ ": no violations") true (Fsck.ok r);
  r

let test_mkfs_clean () =
  List.iter
    (fun scheme ->
      with_scheme scheme (fun w ->
          ignore (check_clean w (Fs.scheme_kind_name scheme))))
    (Fs.all_schemes
    @ [ Fs.Journaled { group_commit = false };
        Fs.Journaled { group_commit = true } ])

let test_create_write_read scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      Fsops.mkdir st "/d";
      Fsops.create st "/d/f";
      Fsops.append st "/d/f" ~bytes:3000;
      let s = Fsops.stat st "/d/f" in
      Alcotest.(check int) "size" 3000 s.Fsops.st_size;
      Alcotest.(check int) "nlink" 1 s.Fsops.st_nlink;
      let frags = Fsops.read_file st "/d/f" in
      Alcotest.(check int) "frags read" 3 frags;
      let r = check_clean w "create-write-read" in
      Alcotest.(check int) "one file" 1 r.Fsck.files;
      Alcotest.(check int) "two dirs" 2 r.Fsck.dirs)

let test_big_file scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      (* spans direct + single-indirect blocks *)
      Fsops.create st "/big";
      Fsops.append st "/big" ~bytes:(20 * 8192);
      Alcotest.(check int) "size" (20 * 8192) (Fsops.stat st "/big").Fsops.st_size;
      Alcotest.(check int) "all frags" (20 * 8) (Fsops.read_file st "/big");
      ignore (check_clean w "big file");
      Fsops.unlink st "/big";
      Fsops.sync st;
      let r = check_clean w "big file removed" in
      Alcotest.(check int) "no files" 0 r.Fsck.files)

let test_fragment_extension scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.append st "/f" ~bytes:1024;
      Fsops.append st "/f" ~bytes:1024;
      Fsops.append st "/f" ~bytes:4096;
      Alcotest.(check int) "size" 6144 (Fsops.stat st "/f").Fsops.st_size;
      Alcotest.(check int) "six frags" 6 (Fsops.read_file st "/f");
      ignore (check_clean w "fragment extension"))

let test_unlink_frees scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      let free0 = Alloc.free_frags_total st in
      Fsops.create st "/f";
      Fsops.append st "/f" ~bytes:8192;
      Fsops.unlink st "/f";
      Alcotest.(check bool) "gone" false (Fsops.exists st "/f");
      Fsops.sync st;
      (* all deferred frees have run after a full sync *)
      Alcotest.(check int) "space returned" free0 (Alloc.free_frags_total st);
      ignore (check_clean w "unlink"))

let test_rmdir scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      Fsops.mkdir st "/a";
      Fsops.mkdir st "/a/b";
      Alcotest.(check int) "parent nlink" 3 (Fsops.stat st "/a").Fsops.st_nlink;
      (try
         Fsops.rmdir st "/a";
         Alcotest.fail "expected ENOTEMPTY"
       with Fsops.Enotempty _ -> ());
      Fsops.rmdir st "/a/b";
      Fsops.sync st;
      Alcotest.(check int) "parent nlink back" 2 (Fsops.stat st "/a").Fsops.st_nlink;
      Fsops.rmdir st "/a";
      Fsops.sync st;
      let r = check_clean w "rmdir" in
      Alcotest.(check int) "root only" 1 r.Fsck.dirs)

let test_rename scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      Fsops.create st "/x";
      Fsops.append st "/x" ~bytes:2048;
      Fsops.rename st ~src:"/x" ~dst:"/y";
      Alcotest.(check bool) "src gone" false (Fsops.exists st "/x");
      Alcotest.(check int) "dst size" 2048 (Fsops.stat st "/y").Fsops.st_size;
      Fsops.create st "/z";
      Fsops.rename st ~src:"/y" ~dst:"/z";
      Alcotest.(check int) "replaced" 2048 (Fsops.stat st "/z").Fsops.st_size;
      Fsops.sync st;
      let r = check_clean w "rename" in
      Alcotest.(check int) "one file" 1 r.Fsck.files)

let test_link scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.link st ~src:"/f" ~dst:"/g";
      Alcotest.(check int) "nlink 2" 2 (Fsops.stat st "/f").Fsops.st_nlink;
      Fsops.unlink st "/f";
      Fsops.sync st;
      Alcotest.(check int) "nlink 1" 1 (Fsops.stat st "/g").Fsops.st_nlink;
      ignore (check_clean w "link"))

let test_many_files scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      Fsops.mkdir st "/dir";
      for i = 1 to 200 do
        let p = Printf.sprintf "/dir/f%d" i in
        Fsops.create st p;
        Fsops.append st p ~bytes:1024
      done;
      (* more entries than one dir block holds: the directory grew *)
      Alcotest.(check bool) "dir grew" true
        ((Fsops.stat st "/dir").Fsops.st_size > 8192);
      Alcotest.(check int) "readdir" 202 (List.length (Fsops.readdir st "/dir"));
      for i = 1 to 100 do
        Fsops.unlink st (Printf.sprintf "/dir/f%d" i)
      done;
      Fsops.sync st;
      let r = check_clean w "many files" in
      Alcotest.(check int) "files left" 100 r.Fsck.files)

let test_create_remove_no_io_soft () =
  (* the paper's create+remove cancellation: with soft updates, a file
     created and removed before any flush costs no disk writes *)
  with_scheme Fs.Soft_updates (fun w ->
      let st = w.Fs.st in
      Fsops.mkdir st "/d";
      Fsops.sync st;
      let writes0 = Su_driver.Trace.writes (Su_driver.Driver.trace w.Fs.driver) in
      for i = 1 to 20 do
        let p = Printf.sprintf "/d/tmp%d" i in
        Fsops.create st p;
        Fsops.unlink st p
      done;
      Fsops.sync st;
      let writes1 = Su_driver.Trace.writes (Su_driver.Driver.trace w.Fs.driver) in
      let stats = Option.get st.State.softdep_stats in
      Alcotest.(check int) "all adds cancelled" 20
        stats.Su_core.Softdep.cancelled_adds;
      (* inode allocation dirties bitmaps; allow a few writes but far
         fewer than the 40+ a sync-write scheme would need *)
      Alcotest.(check bool) "almost no i/o" true (writes1 - writes0 <= 6);
      ignore (check_clean w "create/remove"))

let test_fsync scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.append st "/f" ~bytes:4096;
      Fsops.fsync st "/f";
      (* after fsync the inode must be recoverable from stable storage:
         in place for the write-ordering schemes, via log replay for
         the journaled ones *)
      let image = Su_disk.Disk.image_snapshot w.Fs.disk in
      Fs.recover_image w.Fs.cfg image;
      let inum = Fsops.resolve st "/f" in
      let frag = Su_fstypes.Geom.inode_block_frag w.Fs.cfg.Fs.geom inum in
      (match image.(frag) with
       | Su_fstypes.Types.Meta (Su_fstypes.Types.Inodes dinodes) ->
         let d = dinodes.(Su_fstypes.Geom.inode_index_in_block w.Fs.cfg.Fs.geom inum) in
         Alcotest.(check bool) "inode on disk" true
           (d.Su_fstypes.Types.ftype = Su_fstypes.Types.F_reg);
         Alcotest.(check int) "size on disk" 4096 d.Su_fstypes.Types.size
       | _ -> Alcotest.fail "inode block not on disk"))

let test_errors scheme () =
  with_scheme scheme (fun w ->
      let st = w.Fs.st in
      (try ignore (Fsops.read_file st "/nope"); Alcotest.fail "enoent" with
       | Fsops.Enoent _ -> ());
      Fsops.create st "/f";
      (try Fsops.create st "/f"; Alcotest.fail "eexist" with Fsops.Eexist _ -> ());
      (try Fsops.mkdir st "/f/sub"; Alcotest.fail "enotdir" with
       | Fsops.Enotdir _ -> ());
      Fsops.mkdir st "/d";
      (try Fsops.unlink st "/d"; Alcotest.fail "eisdir" with Fsops.Eisdir _ -> ());
      ignore (check_clean w "errors"))

(* the paper's five schemes plus the journaled extension *)
let tested_schemes =
  Fs.all_schemes
  @ [ Fs.Journaled { group_commit = false }; Fs.Journaled { group_commit = true } ]

let per_scheme name f =
  List.map
    (fun scheme ->
      Alcotest.test_case
        (Printf.sprintf "%s [%s]" name (Fs.scheme_kind_name scheme))
        `Quick (f scheme))
    tested_schemes

let suite =
  [
    Alcotest.test_case "mkfs clean (all schemes)" `Quick test_mkfs_clean;
    Alcotest.test_case "soft updates create/remove no io" `Quick
      test_create_remove_no_io_soft;
  ]
  @ per_scheme "create/write/read" test_create_write_read
  @ per_scheme "big file" test_big_file
  @ per_scheme "fragment extension" test_fragment_extension
  @ per_scheme "unlink frees" test_unlink_frees
  @ per_scheme "rmdir" test_rmdir
  @ per_scheme "rename" test_rename
  @ per_scheme "link" test_link
  @ per_scheme "many files" test_many_files
  @ per_scheme "fsync" test_fsync
  @ per_scheme "errors" test_errors
