(* Regression tests for bugs found (and fixed) during development.
   Each test documents the original failure mode. *)
open Su_sim
open Su_fs

(* Bug: the indirect-branch pointer setter did not write the inode's
   size through to its buffer; once the in-core inode was recycled the
   directory "forgot" it had grown past 12 blocks, losing entry 1535
   (the first one in an indirect directory block). *)
let test_directory_grows_into_indirect () =
  let cfg =
    { (Fs.config ~scheme:Fs.No_order ()) with
      Fs.geom = Su_fstypes.Geom.small;
      cache_mb = 16 }
  in
  let w = Fs.make cfg in
  ignore
    (Proc.spawn w.Fs.engine (fun () ->
         let st = w.Fs.st in
         Fsops.mkdir st "/d";
         (* 12 blocks x 128 slots = 1536 entries incl. "." and "..";
            going past that exercises the indirect path *)
         for i = 1 to 1600 do
           let p = Printf.sprintf "/d/f%d" i in
           Fsops.create st p;
           if not (Fsops.exists st p) then
             Alcotest.failf "entry lost at %d (indirect growth bug)" i
         done;
         Alcotest.(check bool) "directory uses indirect blocks" true
           ((Fsops.stat st "/d").Fsops.st_size > 12 * 8192);
         (* and the whole directory remains enumerable and removable *)
         Alcotest.(check int) "readdir sees all" 1602
           (List.length (Fsops.readdir st "/d"));
         for i = 1 to 1600 do
           Fsops.unlink st (Printf.sprintf "/d/f%d" i)
         done;
         Fsops.rmdir st "/d";
         Fsops.sync st;
         let r =
           Fsck.check ~geom:cfg.Fs.geom
             ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
             ~check_exposure:false
         in
         Alcotest.(check bool) "clean" true (Fsck.ok r);
         Fs.stop w));
  Engine.run w.Fs.engine

(* Bug: two processes missing the inode cache concurrently (the read
   blocks) built two in-core copies with two locks, losing one of two
   concurrent link-count increments on the shared parent. *)
let test_iget_double_fetch_race () =
  let cfg =
    { (Fs.config ~scheme:Fs.Conventional ()) with Fs.geom = Su_fstypes.Geom.small }
  in
  let w = Fs.make cfg in
  ignore (Proc.spawn w.Fs.engine ~name:"u1" (fun () -> Fsops.mkdir w.Fs.st "/a"));
  ignore (Proc.spawn w.Fs.engine ~name:"u2" (fun () -> Fsops.mkdir w.Fs.st "/b"));
  ignore
    (Proc.spawn w.Fs.engine ~name:"ctl" (fun () ->
         Proc.sleep w.Fs.engine 10.0;
         Alcotest.(check int) "both mkdirs counted" 4
           (Fsops.stat w.Fs.st "/").Fsops.st_nlink;
         Fsops.sync w.Fs.st;
         Fs.stop w));
  Engine.run w.Fs.engine

(* Bug: big files allocate full tail blocks while frags_in_block
   reported a partial tail, producing extent-length mismatches between
   the write and read paths. *)
let test_large_file_tail_extent () =
  let cfg =
    { (Fs.config ~scheme:Fs.No_order ()) with Fs.geom = Su_fstypes.Geom.small }
  in
  let w = Fs.make cfg in
  ignore
    (Proc.spawn w.Fs.engine (fun () ->
         let st = w.Fs.st in
         Fsops.create st "/big";
         (* > 12 blocks with a non-block-aligned tail: large files
            allocate a full tail block, so reads cover 15 blocks *)
         Fsops.append st "/big" ~bytes:((14 * 8192) + 3000);
         Alcotest.(check int) "all extents readable" (15 * 8)
           (Fsops.read_file st "/big");
         Alcotest.(check int) "logical size intact" ((14 * 8192) + 3000)
           (Fsops.stat st "/big").Fsops.st_size;
         Fs.stop w));
  Engine.run w.Fs.engine

(* Bug: fsck originally flagged referenced-but-marked-free resources
   as violations; free maps are delayed writes under every scheme, so
   a crashed conventional run always showed them. They must count as
   repairable. *)
let test_stale_maps_not_violations () =
  let cfg =
    { (Fs.config ~scheme:Fs.Conventional ()) with
      Fs.geom = Su_fstypes.Geom.small;
      cache_mb = 8 }
  in
  let w = Fs.make cfg in
  ignore
    (Proc.spawn w.Fs.engine (fun () ->
         let st = w.Fs.st in
         Fsops.mkdir st "/d";
         for i = 1 to 60 do
           let p = Printf.sprintf "/d/f%d" i in
           Fsops.create st p;
           Fsops.append st p ~bytes:4096
         done));
  (* crash mid-run, while the (delayed) bitmap writes are still dirty *)
  let r = Crash.crash_and_check w 1.8 in
  Alcotest.(check bool) "conventional crash is consistent" true (Fsck.ok r);
  Alcotest.(check bool) "stale maps present but repairable" true
    (r.Fsck.stale_free > 0)

(* Reentrant mutex: a process may re-lock a mutex it holds (deferred
   decrements run inline under the conventional scheme). *)
let test_mutex_reentrancy () =
  let e = Engine.create () in
  let m = Su_sim.Sync.Mutex.create e in
  let reached = ref false in
  ignore
    (Proc.spawn e (fun () ->
         Su_sim.Sync.Mutex.with_lock m (fun () ->
             Su_sim.Sync.Mutex.with_lock m (fun () -> reached := true))));
  Engine.run e;
  Alcotest.(check bool) "nested lock did not deadlock" true !reached;
  Alcotest.(check bool) "released" false (Su_sim.Sync.Mutex.locked m)

(* Buffer cell serialisation round-trips. *)
let prop_buf_cells_roundtrip =
  QCheck.Test.make ~name:"data content survives to_cells/of_cells" ~count:200
    QCheck.(list_of_size Gen.(1 -- 8) (option (int_bound 1000)))
    (fun slots ->
      let stamps =
        Array.of_list
          (List.map
             (Option.map (fun i ->
                  Su_fstypes.Types.Written { inum = i; gen = 1; flbn = 0 }))
             slots)
      in
      let content = Su_cache.Buf.Cdata stamps in
      let cells = Su_cache.Buf.to_cells content ~nfrags:(Array.length stamps) in
      match Su_cache.Buf.of_cells cells with
      | Su_cache.Buf.Cdata back -> back = stamps
      | Su_cache.Buf.Cmeta _ -> false)

let suite =
  [
    Alcotest.test_case "directory grows into indirect" `Quick
      test_directory_grows_into_indirect;
    Alcotest.test_case "iget double-fetch race" `Quick
      test_iget_double_fetch_race;
    Alcotest.test_case "large file tail extent" `Quick
      test_large_file_tail_extent;
    Alcotest.test_case "stale maps are repairable" `Quick
      test_stale_maps_not_violations;
    Alcotest.test_case "mutex reentrancy" `Quick test_mutex_reentrancy;
    QCheck_alcotest.to_alcotest prop_buf_cells_roundtrip;
  ]
