(* fsck must actually detect each class of corruption: build a clean
   image, seed one specific inconsistency, and check the verdict. *)
open Su_sim
open Su_fstypes
open Su_fs

let clean_world () =
  let cfg =
    { (Fs.config ~scheme:Fs.No_order ()) with
      Fs.geom = Geom.small;
      cache_mb = 8 }
  in
  let w = Fs.make cfg in
  let _p =
    Proc.spawn w.Fs.engine ~name:"setup" (fun () ->
        let st = w.Fs.st in
        Fsops.mkdir st "/d";
        Fsops.create st "/d/a";
        Fsops.append st "/d/a" ~bytes:4096;
        Fsops.create st "/d/b";
        Fsops.append st "/d/b" ~bytes:12288;
        Fsops.sync st;
        Fs.stop w)
  in
  Engine.run w.Fs.engine;
  (w, Su_disk.Disk.image_snapshot w.Fs.disk)

let geom = Geom.small

let check ?(exposure = true) image =
  Fsck.check ~geom ~image ~check_exposure:exposure

let find_dir_entries image name =
  (* locate the directory block containing [name]; return (frag, entries) *)
  let found = ref None in
  Array.iteri
    (fun frag cell ->
      match cell with
      | Types.Meta (Types.Dir entries) ->
        if
          Array.exists
            (function Some e -> e.Types.name = name | None -> false)
            entries
        then found := Some (frag, entries)
      | _ -> ())
    image;
  match !found with
  | Some x -> x
  | None -> Alcotest.failf "no directory block with entry %s" name

let dinode_of image inum =
  match image.(Geom.inode_block_frag geom inum) with
  | Types.Meta (Types.Inodes dinodes) ->
    dinodes.(Geom.inode_index_in_block geom inum)
  | _ -> Alcotest.fail "inode block unreadable"

let entry_inum entries name =
  match Types.dir_find entries name with
  | Some (_, e) -> e.Types.inum
  | None -> Alcotest.failf "entry %s missing" name

let test_clean_baseline () =
  let _w, image = clean_world () in
  let r = check image in
  Alcotest.(check bool) "clean" true (Fsck.ok r);
  Alcotest.(check int) "two files" 2 r.Fsck.files;
  Alcotest.(check int) "two dirs" 2 r.Fsck.dirs

let has_violation r pred = List.exists pred r.Fsck.violations

let test_detects_dangling_entry () =
  let _w, image = clean_world () in
  let frag, entries = find_dir_entries image "a" in
  let inum = entry_inum entries "a" in
  (* free the inode behind the entry *)
  let d = dinode_of image inum in
  d.Types.ftype <- Types.F_free;
  ignore frag;
  let r = check image in
  Alcotest.(check bool) "dangling detected" true
    (has_violation r (function
      | Fsck.Dangling_entry { inum = i; _ } -> i = inum
      | _ -> false))

let test_detects_cross_allocation () =
  let _w, image = clean_world () in
  let _, entries = find_dir_entries image "a" in
  let ia = entry_inum entries "a" and ib = entry_inum entries "b" in
  let da = dinode_of image ia and db_ = dinode_of image ib in
  (* make b's first block point at a's first block *)
  db_.Types.db.(0) <- da.Types.db.(0);
  let r = check ~exposure:false image in
  Alcotest.(check bool) "cross allocation detected" true
    (has_violation r (function Fsck.Cross_allocated _ -> true | _ -> false))

let test_detects_nlink_low () =
  let _w, image = clean_world () in
  let _, entries = find_dir_entries image "a" in
  let ia = entry_inum entries "a" in
  (dinode_of image ia).Types.nlink <- 0;
  let r = check image in
  Alcotest.(check bool) "nlink low detected" true
    (has_violation r (function Fsck.Nlink_low _ -> true | _ -> false))

let test_detects_referenced_free_frag () =
  let _w, image = clean_world () in
  let _, entries = find_dir_entries image "a" in
  let ia = entry_inum entries "a" in
  let frag0 = (dinode_of image ia).Types.db.(0) in
  (* clear the fragment's bits in its group's map *)
  let c = Geom.cg_of_frag geom frag0 in
  (match image.(Geom.cg_header_frag geom c) with
   | Types.Meta (Types.Cgroup cg) ->
     let base = Geom.cg_base geom c in
     for i = 0 to 3 do
       Bytes.set cg.Types.frag_map (frag0 - base + i) '\000'
     done
   | _ -> Alcotest.fail "no cg header");
  let r = check image in
  Alcotest.(check bool) "stale-free is repairable" true (Fsck.ok r);
  Alcotest.(check bool) "stale-free counted" true (r.Fsck.stale_free >= 4)

let test_detects_exposure () =
  let _w, image = clean_world () in
  let _, entries = find_dir_entries image "a" in
  let ia = entry_inum entries "a" in
  let frag0 = (dinode_of image ia).Types.db.(0) in
  (* overwrite a data fragment with another file's stamp *)
  image.(frag0) <- Types.Frag (Types.Written { inum = 999; gen = 7; flbn = 0 });
  let r = check ~exposure:true image in
  Alcotest.(check bool) "exposure detected" true
    (has_violation r (function Fsck.Exposure _ -> true | _ -> false));
  (* and ignored when initialisation is not promised *)
  let r = check ~exposure:false image in
  Alcotest.(check bool) "exposure not checked" true (Fsck.ok r)

let test_detects_leaks () =
  let _w, image = clean_world () in
  let _, entries = find_dir_entries image "a" in
  let ia = entry_inum entries "a" in
  (* drop the entry: inode and blocks leak (repairable, not violations) *)
  (match Types.dir_find entries "a" with
   | Some (slot, _) -> entries.(slot) <- None
   | None -> ());
  ignore ia;
  let r = check image in
  Alcotest.(check bool) "leaks are not violations" true (Fsck.ok r);
  Alcotest.(check bool) "leaked inode counted" true (r.Fsck.leaked_inodes >= 1);
  Alcotest.(check bool) "leaked frags counted" true (r.Fsck.leaked_frags >= 1)

let test_detects_bad_dir () =
  let _w, image = clean_world () in
  let _, entries = find_dir_entries image "d" in
  let id = entry_inum entries "d" in
  let dd = dinode_of image id in
  (* smash the directory's block pointer to unwritten space *)
  dd.Types.db.(0) <- dd.Types.db.(0) + 8;
  let r = check ~exposure:false image in
  Alcotest.(check bool) "bad dir detected" true
    (has_violation r (function Fsck.Bad_dir _ -> true | _ -> false))

let test_nlink_high_repairable () =
  let _w, image = clean_world () in
  let _, entries = find_dir_entries image "a" in
  let ia = entry_inum entries "a" in
  (dinode_of image ia).Types.nlink <- 5;
  let r = check image in
  Alcotest.(check bool) "no violation" true (Fsck.ok r);
  Alcotest.(check bool) "counted as repairable" true (r.Fsck.nlink_high >= 1)

let suite =
  [
    Alcotest.test_case "clean baseline" `Quick test_clean_baseline;
    Alcotest.test_case "detects dangling entry" `Quick test_detects_dangling_entry;
    Alcotest.test_case "detects cross allocation" `Quick
      test_detects_cross_allocation;
    Alcotest.test_case "detects nlink low" `Quick test_detects_nlink_low;
    Alcotest.test_case "stale-free frag repairable" `Quick
      test_detects_referenced_free_frag;
    Alcotest.test_case "detects exposure" `Quick test_detects_exposure;
    Alcotest.test_case "leaks are repairable" `Quick test_detects_leaks;
    Alcotest.test_case "detects bad dir" `Quick test_detects_bad_dir;
    Alcotest.test_case "nlink high repairable" `Quick test_nlink_high_repairable;
  ]
