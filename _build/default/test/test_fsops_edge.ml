(* Edge cases of the syscall layer: path handling, deep nesting,
   double-indirect files, concurrent users in one directory. *)
open Su_sim
open Su_fs

let mk () =
  let cfg =
    { (Fs.config ~scheme:Fs.Soft_updates ()) with
      Fs.geom = Su_fstypes.Geom.small;
      cache_mb = 16 }
  in
  Fs.make cfg

let in_world w f =
  let r = ref None in
  ignore
    (Proc.spawn w.Fs.engine (fun () ->
         r := Some (f ());
         Fs.stop w));
  Engine.run w.Fs.engine;
  Option.get !r

let test_path_normalisation () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.mkdir st "/a";
      Fsops.create st "/a/f";
      (* trailing and duplicate slashes and "." components resolve *)
      Alcotest.(check bool) "trailing slash" true (Fsops.exists st "/a/");
      Alcotest.(check bool) "double slash" true (Fsops.exists st "//a//f");
      Alcotest.(check bool) "dot component" true (Fsops.exists st "/a/./f");
      Alcotest.(check int) "root resolves" Su_fstypes.Geom.root_inum
        (Fsops.resolve st "/"))

let test_deep_nesting () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      let path = Buffer.create 64 in
      for i = 1 to 12 do
        Buffer.add_string path (Printf.sprintf "/d%d" i);
        Fsops.mkdir st (Buffer.contents path)
      done;
      let leaf = Buffer.contents path ^ "/leaf" in
      Fsops.create st leaf;
      Fsops.append st leaf ~bytes:2048;
      Alcotest.(check int) "leaf size" 2048 (Fsops.stat st leaf).Fsops.st_size;
      (* remove bottom-up *)
      Fsops.unlink st leaf;
      for i = 12 downto 1 do
        let p =
          String.concat "" (List.init i (fun k -> Printf.sprintf "/d%d" (k + 1)))
        in
        Fsops.rmdir st p
      done;
      Fsops.sync st;
      let r =
        Fsck.check ~geom:w.Fs.cfg.Fs.geom
          ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
          ~check_exposure:true
      in
      Alcotest.(check bool) "clean" true (Fsck.ok r);
      Alcotest.(check int) "only root" 1 r.Fsck.dirs)

let test_enotdir_mid_path () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      try
        ignore (Fsops.resolve st "/f/below");
        Alcotest.fail "expected ENOTDIR"
      with Fsops.Enotdir _ -> ())

let test_double_indirect_file () =
  (* a file spanning into the double-indirect range:
     12 + 2048 blocks is too big for the small test disk, so use a
     dedicated geometry trick: verify structure navigation instead via
     the biggest file that fits (about 40 MB of the 64 MB disk would
     exceed a group; use ~30 MB spanning indirect comfortably and
     exercise ptr_at across ranges) *)
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/huge";
      (* 600 blocks: direct (12) + 588 single-indirect *)
      Fsops.append st "/huge" ~bytes:(600 * 8192);
      Alcotest.(check int) "size" (600 * 8192) (Fsops.stat st "/huge").Fsops.st_size;
      Alcotest.(check int) "reads back" (600 * 8) (Fsops.read_file st "/huge");
      let inum = Fsops.resolve st "/huge" in
      let ip = Inode.iget st inum in
      Alcotest.(check bool) "indirect in use" true
        (ip.State.din.Su_fstypes.Types.ib <> 0);
      Alcotest.(check bool) "no double indirect yet" true
        (ip.State.din.Su_fstypes.Types.ib2 = 0);
      Inode.iput st ip;
      Fsops.unlink st "/huge";
      Fsops.sync st;
      let r =
        Fsck.check ~geom:w.Fs.cfg.Fs.geom
          ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
          ~check_exposure:true
      in
      Alcotest.(check bool) "clean after unlink" true (Fsck.ok r))

let test_concurrent_users_one_dir () =
  (* many processes creating and removing in the same directory: the
     locking must serialise correctly with no lost updates *)
  let w = mk () in
  let done_count = ref 0 in
  ignore
    (Proc.spawn w.Fs.engine ~name:"setup" (fun () ->
         Fsops.mkdir w.Fs.st "/shared";
         let spawn_user u =
           ignore
             (Proc.spawn w.Fs.engine
                ~name:(Printf.sprintf "u%d" u)
                (fun () ->
                  let st = w.Fs.st in
                  for i = 1 to 25 do
                    let p = Printf.sprintf "/shared/u%d-%d" u i in
                    Fsops.create st p;
                    Fsops.append st p ~bytes:1024;
                    if i mod 2 = 0 then Fsops.unlink st p
                  done;
                  incr done_count))
         in
         for u = 1 to 6 do
           spawn_user u
         done));
  Engine.run ~until:400.0 w.Fs.engine;
  Alcotest.(check int) "all users finished" 6 !done_count;
  (* 13 survivors per user *)
  let w2names = ref [] in
  ignore
    (Proc.spawn w.Fs.engine (fun () ->
         w2names := Fsops.readdir w.Fs.st "/shared";
         Fsops.sync w.Fs.st;
         Fs.stop w));
  Engine.run w.Fs.engine;
  Alcotest.(check int) "entries" (2 + (6 * 13)) (List.length !w2names);
  let r =
    Fsck.check ~geom:w.Fs.cfg.Fs.geom
      ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
      ~check_exposure:true
  in
  Alcotest.(check bool) "clean" true (Fsck.ok r)

let test_write_file_rewrites () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.append st "/f" ~bytes:20_000;
      let free_mid = Alloc.free_frags_total st in
      Fsops.write_file st "/f" ~bytes:3_000;
      Fsops.sync st;
      Alcotest.(check int) "size replaced" 3000 (Fsops.stat st "/f").Fsops.st_size;
      Alcotest.(check bool) "old space returned" true
        (Alloc.free_frags_total st > free_mid))

let test_rename_onto_directory_rejected () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.mkdir st "/d";
      Fsops.create st "/f";
      try
        Fsops.rename st ~src:"/f" ~dst:"/d";
        Alcotest.fail "expected EISDIR"
      with Fsops.Eisdir _ -> ())

let suite =
  [
    Alcotest.test_case "path normalisation" `Quick test_path_normalisation;
    Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
    Alcotest.test_case "enotdir mid path" `Quick test_enotdir_mid_path;
    Alcotest.test_case "large indirect file" `Quick test_double_indirect_file;
    Alcotest.test_case "concurrent users one dir" `Quick
      test_concurrent_users_one_dir;
    Alcotest.test_case "write_file rewrites" `Quick test_write_file_rewrites;
    Alcotest.test_case "rename onto dir rejected" `Quick
      test_rename_onto_directory_rejected;
  ]
