(* Smoke tests for the experiment drivers (the cheap ones only; the
   full set runs via bench/main.exe). *)
open Su_experiments

let rows table =
  (* count data lines: rendered output minus title, header, rule *)
  let lines = String.split_on_char '\n' (Su_util.Text_table.render table) in
  List.length (List.filter (fun l -> String.trim l <> "") lines) - 3

let test_fig2_shape () =
  let t = Experiments.fig2 `Quick in
  Alcotest.(check int) "five flag variants" 5 (rows t)

let test_crash_experiment () =
  let t = Experiments.crash_consistency `Quick in
  Alcotest.(check int) "five schemes" 5 (rows t);
  (* the rendered table must show zero violations for the four safe
     schemes and non-zero for No Order *)
  let rendered = Su_util.Text_table.render t in
  let lines = String.split_on_char '\n' rendered in
  let no_order =
    List.find (fun l -> String.length l > 8 && String.sub l 0 8 = "No Order") lines
  in
  let fields =
    String.split_on_char ' ' no_order |> List.filter (fun s -> s <> "")
  in
  (* scheme name occupies two fields; the next numeric field is the
     crash-point count, then violations *)
  (match fields with
   | "No" :: "Order" :: _points :: violations :: _ ->
     Alcotest.(check bool) "no-order violates" true
       (int_of_string violations > 0)
   | _ -> Alcotest.fail "unexpected row format")

let test_aging_shape () =
  let t = Experiments.aging `Quick in
  Alcotest.(check int) "fresh and aged" 2 (rows t)

let test_all_ids_resolvable () =
  let ids = List.map fst (Experiments.all `Quick) in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "id %s listed once" id)
        true
        (List.length (List.filter (( = ) id) ids) = 1))
    ids;
  Alcotest.(check bool) "all paper ids present" true
    (List.for_all
       (fun id -> List.mem id ids)
       [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "tab1"; "tab2"; "tab3"; "fig6" ])

let suite =
  [
    Alcotest.test_case "fig2 shape" `Quick test_fig2_shape;
    Alcotest.test_case "crash experiment" `Quick test_crash_experiment;
    Alcotest.test_case "aging shape" `Quick test_aging_shape;
    Alcotest.test_case "all ids resolvable" `Quick test_all_ids_resolvable;
  ]
