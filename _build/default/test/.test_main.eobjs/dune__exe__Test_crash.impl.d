test/test_crash.ml: Alcotest Crash Float Format Fs Fsck Fsops List Printf Proc QCheck QCheck_alcotest Rng Su_fs Su_fstypes Su_sim Su_util
