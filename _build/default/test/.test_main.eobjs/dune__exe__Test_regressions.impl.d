test/test_regressions.ml: Alcotest Array Crash Engine Fs Fsck Fsops Gen List Option Printf Proc QCheck QCheck_alcotest Su_cache Su_disk Su_fs Su_fstypes Su_sim
