test/test_fsck.ml: Alcotest Array Bytes Engine Fs Fsck Fsops Geom List Proc Su_disk Su_fs Su_fstypes Su_sim Types
