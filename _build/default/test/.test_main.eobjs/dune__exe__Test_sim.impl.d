test/test_sim.ml: Alcotest Cpu Engine Gen List Proc QCheck QCheck_alcotest Su_sim Sync
