test/test_schemes.ml: Alcotest Alloc Array Engine Fs Fsck Fsops Geom Inode List Option Printf Proc State Su_cache Su_core Su_disk Su_driver Su_fs Su_fstypes Su_sim Types
