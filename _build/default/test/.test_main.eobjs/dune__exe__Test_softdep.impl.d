test/test_softdep.ml: Alcotest Array Engine File Fs Fsck Fsops Geom Inode Option Printf Proc Su_cache Su_disk Su_fs Su_fstypes Su_sim Types
