test/test_util.ml: Alcotest Float Gen Hashtbl Heap List Option QCheck QCheck_alcotest Rng Stats String Su_util Text_table
