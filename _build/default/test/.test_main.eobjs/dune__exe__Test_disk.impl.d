test/test_disk.ml: Alcotest Array Disk Disk_params Engine Su_disk Su_fstypes Su_sim Types
