test/test_driver.ml: Alcotest Array Driver Engine Gen Hashtbl List Ordering Proc QCheck QCheck_alcotest Request Su_disk Su_driver Su_fstypes Su_sim Trace Types
