test/test_fstypes.ml: Alcotest Array Bytes Geom QCheck QCheck_alcotest Su_fstypes Types
