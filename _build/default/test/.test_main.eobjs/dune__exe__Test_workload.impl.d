test/test_workload.ml: Alcotest Alloc Andrew Array Benchmarks Float Fs Fsops List Printf Runner Sdet Su_fs Su_fstypes Su_sim Su_workload Tree
