test/test_model.ml: Alcotest Engine Format Fs Fsck Fsops List Map Printexc Printf Proc QCheck QCheck_alcotest Rng String Su_disk Su_fs Su_fstypes Su_sim Su_util
