test/test_alloc.ml: Alcotest Alloc Engine Fs Gen Hashtbl List Option Proc QCheck QCheck_alcotest Su_fs Su_fstypes Su_sim
