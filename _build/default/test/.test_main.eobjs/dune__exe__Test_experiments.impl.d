test/test_experiments.ml: Alcotest Experiments List Printf String Su_experiments Su_util
