test/test_fs.ml: Alcotest Alloc Array Engine Format Fs Fsck Fsops List Option Printf Proc State Su_core Su_disk Su_driver Su_fs Su_fstypes Su_sim
