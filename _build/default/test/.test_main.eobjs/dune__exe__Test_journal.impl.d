test/test_journal.ml: Alcotest Array Crash Engine Format Fs Fsck Fsops List Option Printf Proc Rng State Su_core Su_disk Su_fs Su_fstypes Su_sim Su_util
