test/test_cache.ml: Alcotest Array Bcache Buf Engine Proc Su_cache Su_disk Su_driver Su_fstypes Su_sim Syncer Types
