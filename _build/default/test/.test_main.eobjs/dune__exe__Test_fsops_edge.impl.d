test/test_fsops_edge.ml: Alcotest Alloc Buffer Engine Fs Fsck Fsops Inode List Option Printf Proc State String Su_disk Su_fs Su_fstypes Su_sim
