(* Crash-consistency: every scheme except No Order must leave a
   violation-free image at ANY crash point; No Order must not (that is
   the point of the paper). *)
open Su_sim
open Su_fs
open Su_util

let small_config scheme =
  { (Fs.config ~scheme ()) with Fs.geom = Su_fstypes.Geom.small; cache_mb = 8 }

(* A metadata-heavy random workload: two users creating, writing,
   removing, renaming and mkdir/rmdir-ing in their own trees. *)
let workload st rng user () =
  let dir = Printf.sprintf "/u%d" user in
  Fsops.mkdir st dir;
  let live = ref [] in
  let counter = ref 0 in
  for _ = 1 to 120 do
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      incr counter;
      let p = Printf.sprintf "%s/f%d" dir !counter in
      Fsops.create st p;
      Fsops.append st p ~bytes:(1024 * Rng.int_range rng 1 12);
      live := p :: !live
    | 4 | 5 ->
      (match !live with
       | p :: rest ->
         Fsops.unlink st p;
         live := rest
       | [] -> ())
    | 6 ->
      (match !live with
       | p :: rest ->
         let q = p ^ "r" in
         Fsops.rename st ~src:p ~dst:q;
         live := q :: rest
       | [] -> ())
    | 7 ->
      incr counter;
      let d = Printf.sprintf "%s/d%d" dir !counter in
      Fsops.mkdir st d;
      Fsops.create st (d ^ "/inner")
    | 8 | 9 ->
      (match !live with p :: _ -> ignore (Fsops.read_file st p) | [] -> ())
    | _ -> ()
  done

let crash_run ?(nvram = 0) scheme ~seed ~crash_time =
  let w = Fs.make { (small_config scheme) with Fs.nvram_mb = nvram } in
  let rng = Rng.create seed in
  for u = 1 to 2 do
    ignore
      (Proc.spawn w.Fs.engine
         ~name:(Printf.sprintf "user%d" u)
         (workload w.Fs.st (Rng.split rng) u))
  done;
  Crash.crash_and_check w crash_time

let crash_points = [ 0.05; 0.3; 1.1; 2.7; 5.3; 9.9; 30.0 ]

let test_scheme_crash_safe scheme () =
  List.iteri
    (fun i t ->
      let r = crash_run scheme ~seed:(1000 + i) ~crash_time:t in
      if not (Fsck.ok r) then
        List.iter
          (fun v ->
            Format.eprintf "[%s t=%.2f] %a@." (Fs.scheme_kind_name scheme) t
              Fsck.pp_violation v)
          r.Fsck.violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s crash at %.2fs is consistent"
           (Fs.scheme_kind_name scheme) t)
        true (Fsck.ok r))
    crash_points

let test_no_order_violates () =
  (* summed over the crash grid, the unsafe baseline must show at
     least one integrity violation — otherwise our checker (or the
     simulation of delayed writes) is vacuous *)
  let total = ref 0 in
  List.iteri
    (fun i t ->
      let r = crash_run Fs.No_order ~seed:(1000 + i) ~crash_time:t in
      total := !total + List.length r.Fsck.violations)
    crash_points;
  Alcotest.(check bool) "no-order violations found" true (!total > 0)

let test_soft_updates_leaks_only () =
  (* soft updates may leak resources at a crash (deferred frees) but
     never violates; check the leak counters are actually exercised *)
  let leaks = ref 0 in
  List.iteri
    (fun i t ->
      let r = crash_run Fs.Soft_updates ~seed:(2000 + i) ~crash_time:t in
      Alcotest.(check bool) "consistent" true (Fsck.ok r);
      leaks := !leaks + r.Fsck.leaked_frags + r.Fsck.leaked_inodes + r.Fsck.nlink_high)
    crash_points;
  Alcotest.(check bool) "deferred work visible as leaks" true (!leaks > 0)

let safe_schemes =
  [
    Fs.Conventional;
    Fs.Scheduler_flag;
    Fs.Scheduler_chains { barrier_dealloc = false };
    Fs.Scheduler_chains { barrier_dealloc = true };
    Fs.Soft_updates;
  ]

let prop_random_crash_safe =
  QCheck.Test.make ~name:"random crash points are consistent (all safe schemes)"
    ~count:25
    QCheck.(pair (int_bound 10000) (float_bound_inclusive 20.0))
    (fun (seed, t) ->
      let t = Float.max 0.01 t in
      List.for_all
        (fun scheme ->
          let r = crash_run scheme ~seed ~crash_time:t in
          if not (Fsck.ok r) then begin
            List.iter
              (fun v ->
                Format.eprintf "[%s seed=%d t=%.3f] %a@."
                  (Fs.scheme_kind_name scheme) seed t Fsck.pp_violation v)
              r.Fsck.violations;
            false
          end
          else true)
        safe_schemes)

let test_nvram_crash_safe () =
  (* NVRAM makes writes durable on acceptance rather than completion:
     the driver still dispatches in constraint order, so every ordered
     scheme must stay consistent *)
  List.iter
    (fun scheme ->
      List.iteri
        (fun i t ->
          let r = crash_run ~nvram:2 scheme ~seed:(3000 + i) ~crash_time:t in
          if not (Fsck.ok r) then
            List.iter
              (fun v ->
                Format.eprintf "[%s+nvram t=%.2f] %a@."
                  (Fs.scheme_kind_name scheme) t Fsck.pp_violation v)
              r.Fsck.violations;
          Alcotest.(check bool)
            (Printf.sprintf "%s+nvram at %.2f" (Fs.scheme_kind_name scheme) t)
            true (Fsck.ok r))
        [ 0.3; 2.1; 8.8 ])
    [ Fs.Conventional; Fs.Soft_updates;
      Fs.Journaled { group_commit = false } ]

let suite =
  List.map
    (fun scheme ->
      Alcotest.test_case
        (Printf.sprintf "crash grid [%s]" (Fs.scheme_kind_name scheme))
        `Quick
        (test_scheme_crash_safe scheme))
    safe_schemes
  @ [
      Alcotest.test_case "no-order violates" `Quick test_no_order_violates;
      Alcotest.test_case "soft updates leaks only" `Quick
        test_soft_updates_leaks_only;
      QCheck_alcotest.to_alcotest prop_random_crash_safe;
      Alcotest.test_case "nvram crash safety" `Quick test_nvram_crash_safe;
    ]
