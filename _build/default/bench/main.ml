(* Benchmark harness: regenerates every figure and table of the
   paper's evaluation (section 5 plus the section 3 comparisons).

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- --quick      # reduced workloads
     dune exec bench/main.exe -- fig5 tab2    # selected experiments
     dune exec bench/main.exe -- --micro      # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --list       # available ids *)

let available =
  [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "tab1"; "tab2"; "tab3"; "fig6";
    "chains-dealloc"; "chains-cb"; "crash"; "soft-ablate"; "journal"; "nvram"; "aging" ]

(* --- Bechamel micro-benchmarks of the core data structures ------------- *)

let micro () =
  let open Bechamel in
  let heap_bench =
    Test.make ~name:"heap push/pop x1000"
      (Staged.stage (fun () ->
           let h = Su_util.Heap.create ~cmp:compare in
           for i = 0 to 999 do
             Su_util.Heap.push h ((i * 7919) mod 1000)
           done;
           while not (Su_util.Heap.is_empty h) do
             ignore (Su_util.Heap.pop h)
           done))
  in
  let engine_bench =
    Test.make ~name:"engine 1000 events"
      (Staged.stage (fun () ->
           let e = Su_sim.Engine.create () in
           for i = 1 to 1000 do
             Su_sim.Engine.at e (float_of_int i *. 0.001) (fun () -> ())
           done;
           Su_sim.Engine.run e))
  in
  let proc_bench =
    Test.make ~name:"spawn/join 100 processes"
      (Staged.stage (fun () ->
           let e = Su_sim.Engine.create () in
           for _ = 1 to 100 do
             ignore (Su_sim.Proc.spawn e (fun () -> Su_sim.Proc.sleep e 0.01))
           done;
           Su_sim.Engine.run e))
  in
  let seek_bench =
    Test.make ~name:"seek curve x10000"
      (Staged.stage (fun () ->
           let p = Su_disk.Disk_params.hp_c2447 in
           for d = 0 to 9999 do
             ignore (Su_disk.Disk_params.seek_time p (d mod 2000))
           done))
  in
  let rng_bench =
    Test.make ~name:"rng 10000 draws"
      (Staged.stage (fun () ->
           let r = Su_util.Rng.create 1 in
           for _ = 1 to 10_000 do
             ignore (Su_util.Rng.int r 1000)
           done))
  in
  let tests =
    Test.make_grouped ~name:"core"
      [ heap_bench; engine_bench; proc_bench; seek_bench; rng_bench ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances tests
  in
  let results = benchmark () in
  (* Bechamel's analysis: ordinary least squares against run count *)
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock results
  in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results

(* --- main --------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro" args in
  if List.mem "--list" args then begin
    List.iter print_endline available;
    exit 0
  end;
  if micro_only then begin
    micro ();
    exit 0
  end;
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let scale = if quick then `Quick else `Full in
  let wanted = if selected = [] then available else selected in
  let t_start = Unix.gettimeofday () in
  Printf.printf
    "# Metadata Update Performance in File Systems (Ganger & Patt, OSDI 94)\n";
  Printf.printf "# simulated reproduction - %s scale\n\n"
    (if quick then "quick" else "full");
  List.iter
    (fun id ->
      match List.assoc_opt id (Su_experiments.Experiments.all scale) with
      | None -> Printf.eprintf "unknown experiment %S (try --list)\n" id
      | Some thunk ->
        let t0 = Unix.gettimeofday () in
        List.iter Su_util.Text_table.print (thunk ());
        Printf.printf "[%s took %.1fs wall]\n\n%!" id (Unix.gettimeofday () -. t0))
    wanted;
  Printf.printf "# total wall time: %.1fs\n" (Unix.gettimeofday () -. t_start)
