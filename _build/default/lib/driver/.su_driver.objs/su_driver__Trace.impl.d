lib/driver/trace.ml: List Request Stats Su_util
