lib/driver/ordering.ml: List Request
