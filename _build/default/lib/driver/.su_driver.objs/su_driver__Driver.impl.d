lib/driver/driver.ml: Array Hashtbl Int List Map Ordering Request Seq Set Su_disk Su_fstypes Su_sim Trace
