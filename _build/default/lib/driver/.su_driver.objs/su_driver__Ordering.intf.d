lib/driver/ordering.mli: Request
