lib/driver/trace.mli: Request
