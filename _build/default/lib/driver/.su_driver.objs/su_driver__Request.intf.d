lib/driver/request.mli: Format Su_fstypes
