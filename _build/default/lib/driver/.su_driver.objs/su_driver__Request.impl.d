lib/driver/request.ml: Format List String Su_fstypes
