lib/driver/driver.mli: Ordering Request Su_disk Su_fstypes Su_sim Trace
