type flag_semantics = Full | Back | Part | Ignore

type mode =
  | Unordered
  | Flag of { sem : flag_semantics; nr : bool }
  | Chains of { nr : bool }

let flag_semantics_name = function
  | Full -> "Full"
  | Back -> "Back"
  | Part -> "Part"
  | Ignore -> "Ignore"

let mode_name = function
  | Unordered -> "Unordered"
  | Flag { sem; nr } -> flag_semantics_name sem ^ (if nr then "-NR" else "")
  | Chains { nr } -> "Chains" ^ (if nr then "-NR" else "")

type ctx = {
  is_outstanding : int -> bool;
  min_outstanding : unit -> int option;
  conflicting_earlier_write : Request.t -> bool;
}

let gate_completed ctx (r : Request.t) =
  match r.Request.gate with
  | None -> true
  | Some g -> not (ctx.is_outstanding g)

(* No outstanding request has an id below [bound]. The caller's own
   request is outstanding with id >= bound, so [>= bound] is the right
   comparison. *)
let nothing_outstanding_below ctx bound =
  match ctx.min_outstanding () with
  | None -> true
  | Some m -> m >= bound

let flag_eligible sem ctx (r : Request.t) =
  match sem with
  | Ignore -> true
  | Part -> gate_completed ctx r
  | Back ->
    (match r.Request.gate with
     | None -> true
     | Some g -> (not (ctx.is_outstanding g)) && nothing_outstanding_below ctx g)
  | Full ->
    if r.Request.flagged then
      (* a barrier waits for everything issued before it *)
      nothing_outstanding_below ctx r.Request.id
    else
      (* the gate could not start before its predecessors finished,
         so its completion implies theirs *)
      gate_completed ctx r

let eligible mode ctx (r : Request.t) =
  match mode with
  | Unordered -> true
  | Chains { nr } ->
    let deps_ok =
      List.for_all (fun d -> not (ctx.is_outstanding d)) r.Request.deps
      (* flagged requests act as Part-style gates so the chains scheme
         can fall back on barriers for de-allocation (§3.2) *)
      && gate_completed ctx r
    in
    if deps_ok then true
    else
      nr
      && r.Request.kind = Request.Read
      && not (ctx.conflicting_earlier_write r)
  | Flag { sem; nr } ->
    if flag_eligible sem ctx r then true
    else
      nr
      && r.Request.kind = Request.Read
      && not (ctx.conflicting_earlier_write r)
