module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type policy = Clook | Fcfs

type config = {
  mode : Ordering.mode;
  policy : policy;
  max_concat : int;
  keep_records : bool;
}

let default_config =
  { mode = Ordering.Unordered; policy = Clook; max_concat = 64; keep_records = false }

type t = {
  engine : Su_sim.Engine.t;
  disk : Su_disk.Disk.t;
  config : config;
  mutable trace : Trace.t;
  mutable next_id : int;
  mutable last_flagged : int option;
  mutable pending : Request.t IntMap.t;  (* queued, keyed by id *)
  mutable in_flight : Request.t list;  (* on the device *)
  mutable outstanding_ids : IntSet.t;  (* pending + in_flight *)
  mutable start_times : float IntMap.t;  (* device start per in-flight id *)
  mutable writes_by_start : (int * int) list IntMap.t;
      (* outstanding writes: start lbn -> [(id, nfrags)] *)
  mutable head_pos : int;
  mutable idle_waiters : (unit -> unit) list;
}


let trace t = t.trace
let mode t = t.config.mode

let reset_trace t =
  t.trace <- Trace.create ~keep_records:t.config.keep_records ()

let completed t id = not (IntSet.mem id t.outstanding_ids)
let outstanding t = IntSet.cardinal t.outstanding_ids
let queue_length t = IntMap.cardinal t.pending

(* Widest write the driver ever accepts; bounds the interval scan. *)
let max_write_extent = 64

let add_write_index t (r : Request.t) =
  let entry = (r.Request.id, r.Request.nfrags) in
  t.writes_by_start <-
    IntMap.update r.Request.lbn
      (function None -> Some [ entry ] | Some l -> Some (entry :: l))
      t.writes_by_start

let remove_write_index t (r : Request.t) =
  t.writes_by_start <-
    IntMap.update r.Request.lbn
      (function
        | None -> None
        | Some l ->
          (match List.filter (fun (id, _) -> id <> r.Request.id) l with
           | [] -> None
           | l' -> Some l'))
      t.writes_by_start

(* An outstanding write with a lower id whose extent overlaps [r]. *)
let conflicting_earlier_write t (r : Request.t) =
  let lo = r.Request.lbn - max_write_extent and hi = r.Request.lbn + r.Request.nfrags in
  let seq = IntMap.to_seq_from lo t.writes_by_start in
  let rec scan s =
    match s () with
    | Seq.Nil -> false
    | Seq.Cons ((start, entries), rest) ->
      if start >= hi then false
      else if
        List.exists
          (fun (id, len) ->
            id < r.Request.id
            && start < hi
            && r.Request.lbn < start + len)
          entries
      then true
      else scan rest
  in
  scan seq

let ctx t =
  {
    Ordering.is_outstanding = (fun id -> IntSet.mem id t.outstanding_ids);
    min_outstanding = (fun () -> IntSet.min_elt_opt t.outstanding_ids);
    conflicting_earlier_write = (fun r -> conflicting_earlier_write t r);
  }

let eligible_list t =
  let c = ctx t in
  IntMap.fold
    (fun _ r acc ->
      if
        Ordering.eligible t.config.mode c r
        && not (conflicting_earlier_write t r)
      then r :: acc
      else acc)
    t.pending []
  |> List.rev
(* ascending id order *)

let pick_head t candidates =
  match t.config.policy with
  | Fcfs ->
    (match candidates with [] -> None | r :: _ -> Some r)
  | Clook ->
    let ahead =
      List.filter (fun (r : Request.t) -> r.Request.lbn >= t.head_pos) candidates
    in
    let pool = if ahead = [] then candidates else ahead in
    (match pool with
     | [] -> None
     | first :: rest ->
       Some
         (List.fold_left
            (fun (best : Request.t) (r : Request.t) ->
              if r.Request.lbn < best.Request.lbn then r else best)
            first rest))

(* Gather eligible requests that extend [head] contiguously upward,
   same kind, within the concatenation limit. *)
let concat_run t head candidates =
  let by_lbn = Hashtbl.create 16 in
  List.iter
    (fun (r : Request.t) ->
      if r.Request.kind = head.Request.kind && r.Request.id <> head.Request.id then
        Hashtbl.replace by_lbn r.Request.lbn r)
    candidates;
  let rec extend acc last_end total =
    if total >= t.config.max_concat then List.rev acc
    else
      match Hashtbl.find_opt by_lbn last_end with
      | Some r when total + r.Request.nfrags <= t.config.max_concat ->
        extend (r :: acc) (last_end + r.Request.nfrags) (total + r.Request.nfrags)
      | Some _ | None -> List.rev acc
  in
  head :: extend [] (head.Request.lbn + head.Request.nfrags) head.Request.nfrags

let notify_if_idle t =
  if IntSet.is_empty t.outstanding_ids && t.idle_waiters <> [] then begin
    let ws = t.idle_waiters in
    t.idle_waiters <- [];
    List.iter (fun w -> Su_sim.Engine.soon t.engine w) ws
  end

let rec try_dispatch t =
  if not (Su_disk.Disk.busy t.disk) then begin
    let candidates = eligible_list t in
    match pick_head t candidates with
    | None -> ()
    | Some head ->
      let run = concat_run t head candidates in
      List.iter
        (fun (r : Request.t) -> t.pending <- IntMap.remove r.Request.id t.pending)
        run;
      t.in_flight <- t.in_flight @ run;
      let now = Su_sim.Engine.now t.engine in
      List.iter
        (fun (r : Request.t) ->
          t.start_times <- IntMap.add r.Request.id now t.start_times)
        run;
      let lbn = head.Request.lbn in
      let nfrags =
        List.fold_left (fun n (r : Request.t) -> n + r.Request.nfrags) 0 run
      in
      let op, payload =
        match head.Request.kind with
        | Request.Read -> (Su_disk.Disk.Read, None)
        | Request.Write ->
          let cells = Array.make nfrags Su_fstypes.Types.Empty in
          let off = ref 0 in
          List.iter
            (fun (r : Request.t) ->
              (match r.Request.payload with
               | Some p -> Array.blit p 0 cells !off r.Request.nfrags
               | None -> invalid_arg "Driver: write without payload");
              off := !off + r.Request.nfrags)
            run;
          (Su_disk.Disk.Write, Some cells)
      in
      Su_disk.Disk.submit t.disk ~lbn ~nfrags ~op ~payload
        ~on_done:(fun data _svc ->
          let complete_time = Su_sim.Engine.now t.engine in
          let off = ref 0 in
          List.iter
            (fun (r : Request.t) ->
              t.outstanding_ids <- IntSet.remove r.Request.id t.outstanding_ids;
              if r.Request.kind = Request.Write then remove_write_index t r;
              t.in_flight <-
                List.filter
                  (fun (e : Request.t) -> e.Request.id <> r.Request.id)
                  t.in_flight;
              let start =
                match IntMap.find_opt r.Request.id t.start_times with
                | Some s -> s
                | None -> r.Request.issue_time
              in
              t.start_times <- IntMap.remove r.Request.id t.start_times;
              Trace.note t.trace
                {
                  Trace.r_id = r.Request.id;
                  r_kind = r.Request.kind;
                  r_lbn = r.Request.lbn;
                  r_nfrags = r.Request.nfrags;
                  r_sync = r.Request.sync;
                  r_issue = r.Request.issue_time;
                  r_start = start;
                  r_complete = complete_time;
                };
              let slice =
                match data with
                | None -> None
                | Some cells ->
                  Some (Array.sub cells !off r.Request.nfrags)
              in
              off := !off + r.Request.nfrags;
              r.Request.on_complete slice)
            run;
          t.head_pos <- lbn + nfrags;
          notify_if_idle t;
          try_dispatch t)
  end

let create ~engine ~disk config =
  let t = {
    engine;
    disk;
    config;
    trace = Trace.create ~keep_records:config.keep_records ();
    next_id = 0;
    last_flagged = None;
    pending = IntMap.empty;
    in_flight = [];
    outstanding_ids = IntSet.empty;
    start_times = IntMap.empty;
    writes_by_start = IntMap.empty;
    head_pos = 0;
    idle_waiters = [];
  }
  in
  Su_disk.Disk.set_idle_callback disk (fun () -> try_dispatch t);
  t

let submit t ~kind ~lbn ~nfrags ?(flagged = false) ?(deps = []) ?(sync = false)
    ?payload ~on_complete () =
  if nfrags <= 0 then invalid_arg "Driver.submit: nfrags must be positive";
  (match kind, payload with
   | Request.Write, None -> invalid_arg "Driver.submit: write without payload"
   | Request.Write, Some p when Array.length p <> nfrags ->
     invalid_arg "Driver.submit: payload length mismatch"
   | Request.Write, Some _ | Request.Read, _ -> ());
  let id = t.next_id in
  t.next_id <- id + 1;
  let r =
    {
      Request.id;
      kind;
      lbn;
      nfrags;
      payload;
      flagged;
      gate = t.last_flagged;
      deps;
      sync;
      issue_time = Su_sim.Engine.now t.engine;
      on_complete;
    }
  in
  if flagged then t.last_flagged <- Some id;
  t.pending <- IntMap.add id r t.pending;
  t.outstanding_ids <- IntSet.add id t.outstanding_ids;
  if kind = Request.Write then add_write_index t r;
  try_dispatch t;
  id

let quiesce t =
  if not (IntSet.is_empty t.outstanding_ids) then
    Su_sim.Proc.suspend (fun resume ->
        t.idle_waiters <- resume :: t.idle_waiters)
