type event = { time : float; seq : int; callback : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable halted : bool;
  mutable executed : int;
  queue : event Su_util.Heap.t;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = 0.0; seq = 0; halted = false; executed = 0;
    queue = Su_util.Heap.create ~cmp:compare_event }

let now t = t.clock

let at t time callback =
  let time = if time < t.clock then t.clock else time in
  t.seq <- t.seq + 1;
  Su_util.Heap.push t.queue { time; seq = t.seq; callback }

let after t dt callback =
  let dt = if dt < 0.0 then 0.0 else dt in
  at t (t.clock +. dt) callback

let soon t callback = after t 0.0 callback

let stop t = t.halted <- true
let stopped t = t.halted

let run ?until t =
  let limit = match until with None -> infinity | Some u -> u in
  let rec loop () =
    if not t.halted then
      match Su_util.Heap.peek t.queue with
      | None -> ()
      | Some ev ->
        if ev.time > limit then t.clock <- limit
        else begin
          ignore (Su_util.Heap.pop t.queue);
          t.clock <- ev.time;
          t.executed <- t.executed + 1;
          ev.callback ();
          loop ()
        end
  in
  loop ()

let events_executed t = t.executed
