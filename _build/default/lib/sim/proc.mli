(** Lightweight simulated processes built on OCaml 5 effects.

    A process is an ordinary OCaml function whose blocking points
    (sleeps, I/O waits, lock waits) perform effects handled by the
    engine: the one-shot continuation is parked and resumed by a later
    event. Code between blocking points executes atomically with
    respect to other processes, mirroring a uniprocessor kernel with
    well-defined preemption points.

    Invariant: wake-ups always go through [Engine.soon]/[Engine.after];
    a resumption never runs synchronously inside the waker. *)

type handle
(** A spawned process. *)

val spawn : Engine.t -> ?name:string -> (unit -> unit) -> handle
(** [spawn engine f] schedules [f] to start at the current time.
    An exception escaping [f] is wrapped in [Process_failure] and
    propagates out of [Engine.run]. *)

exception Process_failure of string * exn

val name : handle -> string
val finished : handle -> bool

val cpu_time : handle -> float
(** Total CPU seconds charged to this process (see {!Cpu}). *)

val charge_cpu : handle -> float -> unit
(** Account CPU usage; normally called by {!Cpu} only. *)

val self : unit -> handle
(** The currently running process.
    @raise Invalid_argument outside process context. *)

val self_opt : unit -> handle option

val sleep : Engine.t -> float -> unit
(** Block the calling process for a virtual duration. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process and hands its resume
    thunk to [register]. The thunk must be invoked exactly once, via
    the engine's event queue. *)

val join : Engine.t -> handle -> unit
(** Block until the given process finishes. Returns immediately if it
    already has. *)

val join_all : Engine.t -> handle list -> unit

(** One-shot write-once cells usable as completion signals. *)
module Ivar : sig
  type 'a t

  val create : Engine.t -> 'a t
  val fill : 'a t -> 'a -> unit
  (** @raise Invalid_argument if already filled. *)

  val is_filled : 'a t -> bool

  val read : 'a t -> 'a
  (** Block the calling process until filled, then return the value. *)

  val peek : 'a t -> 'a option
end
