type job = { duration : float; resume : unit -> unit; owner : Proc.handle option }

type t = {
  engine : Engine.t;
  mutable busy : bool;
  mutable served : float;
  queue : job Queue.t;
}

let create engine = { engine; busy = false; served = 0.0; queue = Queue.create () }

let rec start t job =
  t.busy <- true;
  Engine.after t.engine job.duration (fun () ->
      t.served <- t.served +. job.duration;
      (match job.owner with
       | Some h -> Proc.charge_cpu h job.duration
       | None -> ());
      job.resume ();
      if Queue.is_empty t.queue then t.busy <- false
      else start t (Queue.pop t.queue))

let consume t seconds =
  if seconds > 0.0 then begin
    let owner = Proc.self_opt () in
    Proc.suspend (fun resume ->
        let job = { duration = seconds; resume; owner } in
        if t.busy then Queue.add job t.queue else start t job)
  end

let busy_time t = t.served
let queue_length t = Queue.length t.queue
