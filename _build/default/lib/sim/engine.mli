(** Discrete-event simulation engine.

    The engine owns a virtual clock and a time-ordered event queue.
    Events with equal timestamps fire in scheduling order. All
    simulated activity — process resumptions, disk completions, daemon
    wake-ups — is driven by callbacks scheduled here. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at t time f] schedules [f] at absolute virtual [time]. Scheduling
    in the past is clamped to [now]. *)

val after : t -> float -> (unit -> unit) -> unit
(** [after t dt f] schedules [f] at [now t +. dt]. Negative [dt] is
    clamped to zero. *)

val soon : t -> (unit -> unit) -> unit
(** Schedule at the current time, after already-pending same-time
    events. Used to defer wake-ups out of the waker's context. *)

val stop : t -> unit
(** Abort the run: no further events fire. Used for crash injection. *)

val stopped : t -> bool

val run : ?until:float -> t -> unit
(** Execute events until the queue drains, [stop] is called, or the
    clock would pass [until] (the clock is then left at [until]).
    Exceptions raised by event callbacks propagate to the caller. *)

val events_executed : t -> int
(** Total callbacks executed so far (for engine health checks). *)
