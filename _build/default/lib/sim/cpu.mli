(** A single shared CPU modelled as a FIFO server.

    Processes consume CPU in bursts; concurrent bursts serialise in
    first-come-first-served order, approximating a time-sharing
    uniprocessor at syscall granularity (the workloads chunk long
    computations into small bursts). Each burst is charged to the
    calling process's CPU account. *)

type t

val create : Engine.t -> t

val consume : t -> float -> unit
(** [consume cpu seconds] blocks the calling process for its queueing
    delay plus [seconds] of service, and charges [seconds] to it.
    No-op for non-positive durations. *)

val busy_time : t -> float
(** Total CPU seconds served so far (utilisation numerator). *)

val queue_length : t -> int
