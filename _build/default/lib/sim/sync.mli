(** Blocking synchronisation primitives for simulated processes. *)

(** FIFO wait queues (condition-variable style, no associated lock —
    process steps are atomic between blocking points). *)
module Waitq : sig
  type t

  val create : Engine.t -> t
  val wait : t -> unit
  (** Park the calling process until signalled. *)

  val signal : t -> unit
  (** Wake the longest-waiting process, if any. *)

  val broadcast : t -> unit
  (** Wake every waiting process. *)

  val waiting : t -> int
end

(** Mutual exclusion with FIFO hand-off. Reentrant: the owning
    process may nest [lock]/[unlock] pairs (kernel-style recursive
    locking, required when deferred completions run inline in a
    process that already holds the lock). *)
module Mutex : sig
  type t

  val create : Engine.t -> t
  val lock : t -> unit
  val unlock : t -> unit
  (** @raise Invalid_argument if the mutex is not held. *)

  val try_lock : t -> bool
  val locked : t -> bool

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Releases on exception. *)
end

(** Counting semaphore. *)
module Semaphore : sig
  type t

  val create : Engine.t -> int -> t
  val acquire : t -> unit
  val release : t -> unit
  val available : t -> int
end
