lib/sim/cpu.ml: Engine Proc Queue
