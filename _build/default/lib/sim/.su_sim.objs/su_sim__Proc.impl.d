lib/sim/proc.ml: Effect Engine Fun List Printf
