lib/sim/sync.ml: Engine Fun Proc Queue
