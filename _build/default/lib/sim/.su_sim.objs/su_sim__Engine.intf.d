lib/sim/engine.mli:
