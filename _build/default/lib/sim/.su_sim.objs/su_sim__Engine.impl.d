lib/sim/engine.ml: Su_util
