type handle = {
  pname : string;
  mutable cpu : float;
  mutable dead : bool;
  mutable waiters : (unit -> unit) list;
}

exception Process_failure of string * exn

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* The simulator is single-threaded and engines run one at a time, so a
   module-level "current process" register is sound; it is saved and
   restored around every resumption so nested wake-ups cannot clobber
   it. *)
let current : handle option ref = ref None

let name h = h.pname
let finished h = h.dead
let cpu_time h = h.cpu
let charge_cpu h dt = h.cpu <- h.cpu +. dt

let self_opt () = !current

let self () =
  match !current with
  | Some h -> h
  | None -> invalid_arg "Proc.self: not in process context"

let counter = ref 0

let spawn engine ?name f =
  incr counter;
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "proc-%d" !counter
  in
  let h = { pname; cpu = 0.0; dead = false; waiters = [] } in
  let finish () =
    h.dead <- true;
    let ws = h.waiters in
    h.waiters <- [];
    List.iter (fun w -> Engine.soon engine w) ws
  in
  let body () =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> finish ());
        exnc = (fun e -> finish (); raise (Process_failure (pname, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Proc: continuation resumed twice";
                    resumed := true;
                    let saved = !current in
                    current := Some h;
                    Fun.protect
                      ~finally:(fun () -> current := saved)
                      (fun () -> continue k ())
                  in
                  register resume)
            | _ -> None);
      }
  in
  Engine.soon engine (fun () ->
      let saved = !current in
      current := Some h;
      Fun.protect ~finally:(fun () -> current := saved) body);
  h

let suspend register = Effect.perform (Suspend register)

let sleep engine dt =
  suspend (fun resume -> Engine.after engine dt resume)

let join engine h =
  if not h.dead then
    suspend (fun resume -> h.waiters <- resume :: h.waiters)
  else ignore engine

let join_all engine hs = List.iter (join engine) hs

module Ivar = struct
  type 'a state = Empty of (unit -> unit) list | Full of 'a
  type 'a t = { engine : Engine.t; mutable state : 'a state }

  let create engine = { engine; state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Full v;
      List.iter (fun w -> Engine.soon t.engine w) waiters

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false

  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
      suspend (fun resume ->
          match t.state with
          | Full _ -> Engine.soon t.engine resume
          | Empty waiters -> t.state <- Empty (resume :: waiters));
      (match t.state with
       | Full v -> v
       | Empty _ -> invalid_arg "Ivar.read: woken while empty")
end
