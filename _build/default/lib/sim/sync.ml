module Waitq = struct
  type t = { engine : Engine.t; waiters : (unit -> unit) Queue.t }

  let create engine = { engine; waiters = Queue.create () }

  let wait t = Proc.suspend (fun resume -> Queue.add resume t.waiters)

  let signal t =
    if not (Queue.is_empty t.waiters) then
      Engine.soon t.engine (Queue.pop t.waiters)

  let broadcast t =
    while not (Queue.is_empty t.waiters) do
      Engine.soon t.engine (Queue.pop t.waiters)
    done

  let waiting t = Queue.length t.waiters
end

module Mutex = struct
  (* Reentrant: the owning process may lock again (kernel-style
     recursive locking, needed when a deferred completion runs inline
     in the process that already holds the lock). *)
  type t = {
    engine : Engine.t;
    mutable owner : Proc.handle option;
    mutable depth : int;
    queue : (Proc.handle * (unit -> unit)) Queue.t;
  }

  let create engine = { engine; owner = None; depth = 0; queue = Queue.create () }

  let lock t =
    let self = Proc.self () in
    match t.owner with
    | None ->
      t.owner <- Some self;
      t.depth <- 1
    | Some owner when owner == self -> t.depth <- t.depth + 1
    | Some _ ->
      Proc.suspend (fun resume -> Queue.add (self, resume) t.queue)
  (* on hand-off the mutex stays held: the woken process owns it *)

  let unlock t =
    (match t.owner with
     | None -> invalid_arg "Mutex.unlock: not locked"
     | Some _ -> ());
    t.depth <- t.depth - 1;
    if t.depth = 0 then
      if Queue.is_empty t.queue then t.owner <- None
      else begin
        let next_owner, resume = Queue.pop t.queue in
        t.owner <- Some next_owner;
        t.depth <- 1;
        Engine.soon t.engine resume
      end

  let try_lock t =
    match t.owner with
    | None ->
      t.owner <- Some (Proc.self ());
      t.depth <- 1;
      true
    | Some owner when owner == Proc.self () ->
      t.depth <- t.depth + 1;
      true
    | Some _ -> false

  let locked t = t.owner <> None

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Semaphore = struct
  type t = { engine : Engine.t; mutable count : int; queue : (unit -> unit) Queue.t }

  let create engine count = { engine; count; queue = Queue.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Proc.suspend (fun resume -> Queue.add resume t.queue)

  let release t =
    if Queue.is_empty t.queue then t.count <- t.count + 1
    else Engine.soon t.engine (Queue.pop t.queue)

  let available t = t.count
end
