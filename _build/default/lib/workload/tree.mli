(** Synthetic directory trees and recursive tree operations.

    The default profile matches the paper's copy-benchmark source tree
    (535 files totalling 14.3 MB, taken from the first author's home
    directory): a deterministic three-level hierarchy with a skewed
    file-size distribution scaled to the requested total. *)

type node =
  | Dir of string * node list
  | File of string * int  (** name, size in bytes *)

val spec : ?seed:int -> ?files:int -> ?total_bytes:int -> unit -> node list
(** Deterministic forest description. Defaults: seed 17, 535 files,
    14.3 MB. *)

val count_files : node list -> int
val count_dirs : node list -> int
val total_bytes : node list -> int

val populate : Su_fs.State.t -> base:string -> node list -> unit
(** Create the forest under the (existing) directory [base]. *)

val copy : Su_fs.State.t -> src:string -> dst:string -> unit
(** Recursive copy: walk [src] with readdir/stat, creating
    directories and copying file contents (read + write) into the
    (existing) directory [dst]. *)

val remove : Su_fs.State.t -> string -> unit
(** Recursively delete the named directory's contents and the
    directory itself. *)
