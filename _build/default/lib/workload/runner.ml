open Su_sim
open Su_fs

type measures = {
  users : int;
  elapsed_avg : float;
  elapsed_max : float;
  cpu_total : float;
  disk_requests : int;
  disk_reads : int;
  disk_writes : int;
  avg_response_ms : float;
  avg_access_ms : float;
  sync_response_ms : float;
  softdep : Su_core.Softdep.stats option;
}

let drop_caches (w : Fs.world) =
  List.iter
    (fun (b : Su_cache.Buf.t) ->
      if b.Su_cache.Buf.refcount = 0 && not b.Su_cache.Buf.dirty then
        Su_cache.Bcache.invalidate w.Fs.cache b)
    (Su_cache.Bcache.all_bufs w.Fs.cache);
  Hashtbl.reset w.Fs.st.State.icache

let run ~cfg ?setup ?cold_start ~users body =
  let cold_start =
    match cold_start with Some c -> c | None -> setup <> None
  in
  let setup = match setup with Some f -> f | None -> fun _ -> () in
  let w = Fs.make cfg in
  let result = ref None in
  let controller () =
    setup w.Fs.st;
    Fsops.sync w.Fs.st;
    if cold_start then drop_caches w;
    Su_driver.Driver.reset_trace w.Fs.driver;
    let t0 = Engine.now w.Fs.engine in
    let elapsed = Array.make users 0.0 in
    let handles =
      List.init users (fun i ->
          Proc.spawn w.Fs.engine
            ~name:(Printf.sprintf "user%d" i)
            (fun () ->
              body i w.Fs.st;
              elapsed.(i) <- Engine.now w.Fs.engine -. t0))
    in
    Proc.join_all w.Fs.engine handles;
    let cpu_total =
      List.fold_left (fun acc h -> acc +. Proc.cpu_time h) 0.0 handles
    in
    (* elapsed/CPU are the users'; disk statistics are system-wide and
       include the queued writes that drain after the benchmark
       completes (the paper's multi-second driver response times in
       table 2 are only visible this way) *)
    Fs.stop w;
    Su_driver.Driver.quiesce w.Fs.driver;
    let tr = Su_driver.Driver.trace w.Fs.driver in
    let n = float_of_int users in
    result :=
      Some
        {
          users;
          elapsed_avg = Array.fold_left ( +. ) 0.0 elapsed /. n;
          elapsed_max = Array.fold_left Float.max 0.0 elapsed;
          cpu_total;
          disk_requests = Su_driver.Trace.requests tr;
          disk_reads = Su_driver.Trace.reads tr;
          disk_writes = Su_driver.Trace.writes tr;
          avg_response_ms = Su_driver.Trace.avg_response_ms tr;
          avg_access_ms = Su_driver.Trace.avg_access_ms tr;
          sync_response_ms = Su_driver.Trace.sync_avg_response_ms tr;
          softdep = w.Fs.st.State.softdep_stats;
        };
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  Engine.run w.Fs.engine;
  match !result with
  | Some m -> m
  | None -> failwith "Runner.run: benchmark did not complete"

let repeat ~reps f =
  if reps <= 0 then invalid_arg "Runner.repeat: reps must be positive";
  let ms = List.init reps f in
  let avg sel = List.fold_left (fun a m -> a +. sel m) 0.0 ms /. float_of_int reps in
  let avgi sel =
    int_of_float
      (Float.round
         (List.fold_left (fun a m -> a +. float_of_int (sel m)) 0.0 ms
         /. float_of_int reps))
  in
  match ms with
  | [] -> invalid_arg "Runner.repeat: impossible"
  | first :: _ ->
    {
      users = first.users;
      elapsed_avg = avg (fun m -> m.elapsed_avg);
      elapsed_max = avg (fun m -> m.elapsed_max);
      cpu_total = avg (fun m -> m.cpu_total);
      disk_requests = avgi (fun m -> m.disk_requests);
      disk_reads = avgi (fun m -> m.disk_reads);
      disk_writes = avgi (fun m -> m.disk_writes);
      avg_response_ms = avg (fun m -> m.avg_response_ms);
      avg_access_ms = avg (fun m -> m.avg_access_ms);
      sync_response_ms = avg (fun m -> m.sync_response_ms);
      softdep = first.softdep;
    }
