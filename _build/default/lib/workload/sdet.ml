open Su_util
open Su_fs

type result = { scripts_per_hour : float; measures : Runner.measures }

(* One user command; the weights approximate a software-development
   mix (editing, compiling, file shuffling, browsing). *)
let command st rng ~dir ~counter =
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s/%s%d" dir prefix !counter
  in
  let existing prefix =
    if !counter = 0 then None
    else
      let i = 1 + Rng.int rng !counter in
      let p = Printf.sprintf "%s/%s%d" dir prefix i in
      if Fsops.exists st p then Some p else None
  in
  match
    Rng.weighted rng
      [ (20, `Edit); (10, `Compile); (10, `Ls); (15, `Cp); (15, `Rm);
        (15, `Touch); (5, `Mkdir); (5, `Stat); (5, `Cat) ]
  with
  | `Edit ->
    (match existing "f" with
     | Some p ->
       ignore (Fsops.read_file st p);
       Fsops.write_file st p ~bytes:(1024 * Rng.int_range rng 1 16)
     | None ->
       let p = fresh "f" in
       Fsops.create st p;
       Fsops.append st p ~bytes:(1024 * Rng.int_range rng 1 16))
  | `Compile ->
    (match existing "f" with
     | Some p -> ignore (Fsops.read_file st p)
     | None -> ());
    State.charge st (0.1 +. Rng.float rng 0.4);
    let o = fresh "o" in
    Fsops.create st o;
    Fsops.append st o ~bytes:(1024 * Rng.int_range rng 4 24)
  | `Ls -> ignore (Fsops.readdir st dir)
  | `Cp ->
    (match existing "f" with
     | Some p ->
       let sz = (Fsops.stat st p).Fsops.st_size in
       ignore (Fsops.read_file st p);
       let q = fresh "f" in
       Fsops.create st q;
       if sz > 0 then Fsops.append st q ~bytes:sz
     | None -> ())
  | `Rm ->
    (match existing "f" with Some p -> Fsops.unlink st p | None -> ())
  | `Touch ->
    let p = fresh "f" in
    Fsops.create st p
  | `Mkdir ->
    let d = fresh "d" in
    Fsops.mkdir st d;
    let p = d ^ "/x" in
    Fsops.create st p;
    Fsops.append st p ~bytes:2048
  | `Stat ->
    (match existing "f" with
     | Some p -> ignore (Fsops.stat st p)
     | None -> ())
  | `Cat ->
    (match existing "f" with
     | Some p -> ignore (Fsops.read_file st p)
     | None -> ())

let run ~cfg ~concurrency ?(seed = 7) ?(commands = 60) () =
  let m =
    Runner.run ~cfg ~users:concurrency
      ~setup:(fun st ->
        for u = 0 to concurrency - 1 do
          let dir = Printf.sprintf "/s%d" u in
          Fsops.mkdir st dir;
          (* a small starting tree to edit *)
          for i = 1 to 5 do
            let p = Printf.sprintf "%s/f%d" dir i in
            Fsops.create st p;
            Fsops.append st p ~bytes:(4096 + (i * 1024))
          done
        done)
      (fun u st ->
        let rng = Rng.create (seed + (u * 7919)) in
        let dir = Printf.sprintf "/s%d" u in
        let counter = ref 5 in
        for _ = 1 to commands do
          command st rng ~dir ~counter
        done)
  in
  let scripts_per_hour =
    if m.Runner.elapsed_max <= 0.0 then 0.0
    else float_of_int concurrency /. (m.Runner.elapsed_max /. 3600.0)
  in
  { scripts_per_hour; measures = m }
