(** An Sdet-like software-development workload (§5.4, SPEC SDM).

    Scripts of user commands (edit, compile, file utilities) are
    generated randomly from a predetermined mix; [concurrency] scripts
    execute at once, each in its own directory. The reported metric is
    scripts per hour. *)

type result = {
  scripts_per_hour : float;
  measures : Runner.measures;
}

val run :
  cfg:Su_fs.Fs.config -> concurrency:int -> ?seed:int -> ?commands:int -> unit -> result
(** Defaults: seed 7, 60 commands per script. *)
