open Su_sim
open Su_fs

type result = { phases : float array; total : float }
type summary = { mean : result; stdev : result; reps : int }

(* Andrew's source: ~70 files, ~200 KB of program text in a handful of
   directories. *)
let source_spec seed = Tree.spec ~seed ~files:70 ~total_bytes:200_000 ()

let rec dirs_of base nodes =
  List.concat_map
    (function
      | Tree.File _ -> []
      | Tree.Dir (name, children) ->
        let p = base ^ "/" ^ name in
        p :: dirs_of p children)
    nodes

let rec files_of base nodes =
  List.concat_map
    (function
      | Tree.File (name, size) -> [ (base ^ "/" ^ name, size) ]
      | Tree.Dir (name, children) -> files_of (base ^ "/" ^ name) children)
    nodes

let compile_units = 12
let compile_cpu_total = 276.0  (* seconds: the paper's slow-CPU compile *)
let cpu_chunk = 0.05

let run_once ~cfg ~seed =
  let nodes = source_spec seed in
  let w = Fs.make cfg in
  let result = ref None in
  let controller () =
    let st = w.Fs.st in
    Fsops.mkdir st "/src";
    Tree.populate st ~base:"/src" nodes;
    Fsops.sync st;
    let phases = Array.make 5 0.0 in
    let timed i f =
      let t0 = Engine.now w.Fs.engine in
      f ();
      phases.(i) <- Engine.now w.Fs.engine -. t0
    in
    (* phase 1: make the directory tree *)
    timed 0 (fun () ->
        Fsops.mkdir st "/work";
        List.iter (fun d -> Fsops.mkdir st d)
          (dirs_of "/work" nodes));
    (* phase 2: copy the files *)
    timed 1 (fun () ->
        List.iter
          (fun (path, size) ->
            let rel = String.sub path 4 (String.length path - 4) in
            ignore (Fsops.read_file st path);
            let dst = "/work" ^ rel in
            Fsops.create st dst;
            Fsops.append st dst ~bytes:size)
          (files_of "/src" nodes));
    (* phase 3: stat every file *)
    timed 2 (fun () ->
        List.iter
          (fun (path, _) ->
            let rel = String.sub path 4 (String.length path - 4) in
            ignore (Fsops.stat st ("/work" ^ rel)))
          (files_of "/src" nodes));
    (* phase 4: read every byte *)
    timed 3 (fun () ->
        List.iter
          (fun (path, _) ->
            let rel = String.sub path 4 (String.length path - 4) in
            ignore (Fsops.read_file st ("/work" ^ rel)))
          (files_of "/src" nodes));
    (* phase 5: compile *)
    timed 4 (fun () ->
        let per_unit = compile_cpu_total /. float_of_int compile_units in
        let files = files_of "/src" nodes in
        for u = 1 to compile_units do
          (* read some sources, crunch, emit an object file *)
          List.iteri
            (fun i (path, _) ->
              if i mod compile_units = u - 1 then begin
                let rel = String.sub path 4 (String.length path - 4) in
                ignore (Fsops.read_file st ("/work" ^ rel))
              end)
            files;
          let rec crunch remaining =
            if remaining > 0.0 then begin
              State.charge st (Float.min cpu_chunk remaining);
              crunch (remaining -. cpu_chunk)
            end
          in
          crunch per_unit;
          let o = Printf.sprintf "/work/unit%d.o" u in
          Fsops.create st o;
          Fsops.append st o ~bytes:(16_384 + (u * 1024))
        done);
    result := Some { phases; total = Array.fold_left ( +. ) 0.0 phases };
    Fs.stop w;
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"andrew" controller);
  Engine.run w.Fs.engine;
  match !result with
  | Some r -> r
  | None -> failwith "Andrew.run_once: did not complete"

let run ~cfg ~reps =
  if reps <= 0 then invalid_arg "Andrew.run: reps must be positive";
  let results = List.init reps (fun i -> run_once ~cfg ~seed:(41 + i)) in
  let n = float_of_int reps in
  let mean_of sel =
    List.fold_left (fun a r -> a +. sel r) 0.0 results /. n
  in
  let stdev_of sel =
    let m = mean_of sel in
    if reps < 2 then 0.0
    else
      sqrt
        (List.fold_left (fun a r -> a +. ((sel r -. m) ** 2.0)) 0.0 results
        /. (n -. 1.0))
  in
  let build f =
    {
      phases = Array.init 5 (fun i -> f (fun r -> r.phases.(i)));
      total = f (fun r -> r.total);
    }
  in
  { mean = build mean_of; stdev = build stdev_of; reps }
