(** The paper's metadata-intensive benchmarks (§2, §5.1, §5.2).

    All return {!Runner.measures}; throughput figures are derived by
    the caller from elapsed times. *)

val copy : cfg:Su_fs.Fs.config -> users:int -> ?seed:int -> unit -> Runner.measures
(** N-user copy: each user recursively copies its own pre-populated
    535-file / 14.3 MB tree ([/srcN] to [/dstN]). Set-up (populating
    the sources) is not measured. *)

val remove : cfg:Su_fs.Fs.config -> users:int -> ?seed:int -> unit -> Runner.measures
(** N-user remove: each user deletes one newly copied tree. The
    measured phase is the recursive delete only. *)

val create_files :
  cfg:Su_fs.Fs.config -> users:int -> total_files:int -> Runner.measures
(** 1 KB file creates, [total_files] split among per-user
    directories (figure 5a). *)

val remove_files :
  cfg:Su_fs.Fs.config -> users:int -> total_files:int -> Runner.measures
(** Removes of previously created (and synced) 1 KB files (5b). *)

val create_remove_files :
  cfg:Su_fs.Fs.config -> users:int -> total_files:int -> Runner.measures
(** Each created file is immediately removed (5c). *)

val files_per_second : total_files:int -> Runner.measures -> float
