(** The original Andrew file-system benchmark (§5.3), synthesised:

    1. create the target directory tree,
    2. copy the source files into it,
    3. examine the status of every file (recursive stat),
    4. read every byte of every file,
    5. compile — modelled as CPU bursts producing object files (the
       phase is compute-bound in the paper and dominates the total).

    Each execution uses a fresh world; phase times are per-phase
    elapsed seconds for the single benchmark user. *)

type result = {
  phases : float array;  (** length 5 *)
  total : float;
}

type summary = {
  mean : result;
  stdev : result;
  reps : int;
}

val run_once : cfg:Su_fs.Fs.config -> seed:int -> result
val run : cfg:Su_fs.Fs.config -> reps:int -> summary
