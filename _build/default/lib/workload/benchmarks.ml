open Su_fs

let src n = Printf.sprintf "/src%d" n
let dst n = Printf.sprintf "/dst%d" n

let populate_sources st ~users ~seed =
  for u = 0 to users - 1 do
    let nodes = Tree.spec ~seed:(seed + u) () in
    Fsops.mkdir st (src u);
    Tree.populate st ~base:(src u) nodes
  done

let copy ~cfg ~users ?(seed = 17) () =
  Runner.run ~cfg ~users
    ~setup:(fun st ->
      populate_sources st ~users ~seed;
      for u = 0 to users - 1 do
        Fsops.mkdir st (dst u)
      done)
    (fun u st -> Tree.copy st ~src:(src u) ~dst:(dst u))

let remove ~cfg ~users ?(seed = 17) () =
  Runner.run ~cfg ~users
    ~setup:(fun st ->
      (* each user removes a newly *copied* tree, as in the paper *)
      populate_sources st ~users ~seed;
      for u = 0 to users - 1 do
        Fsops.mkdir st (dst u);
        Tree.copy st ~src:(src u) ~dst:(dst u)
      done)
    (fun u st -> Tree.remove st (dst u))

let user_dir u = Printf.sprintf "/u%d" u

let per_user ~users ~total_files u =
  (total_files / users) + (if u < total_files mod users then 1 else 0)

let create_files ~cfg ~users ~total_files =
  Runner.run ~cfg ~users
    ~setup:(fun st ->
      for u = 0 to users - 1 do
        Fsops.mkdir st (user_dir u)
      done)
    (fun u st ->
      for i = 1 to per_user ~users ~total_files u do
        let p = Printf.sprintf "%s/f%d" (user_dir u) i in
        Fsops.create st p;
        Fsops.append st p ~bytes:1024
      done)

let remove_files ~cfg ~users ~total_files =
  Runner.run ~cfg ~users
    ~setup:(fun st ->
      for u = 0 to users - 1 do
        Fsops.mkdir st (user_dir u);
        for i = 1 to per_user ~users ~total_files u do
          let p = Printf.sprintf "%s/f%d" (user_dir u) i in
          Fsops.create st p;
          Fsops.append st p ~bytes:1024
        done
      done)
    (fun u st ->
      for i = 1 to per_user ~users ~total_files u do
        Fsops.unlink st (Printf.sprintf "%s/f%d" (user_dir u) i)
      done)

let create_remove_files ~cfg ~users ~total_files =
  Runner.run ~cfg ~users
    ~setup:(fun st ->
      for u = 0 to users - 1 do
        Fsops.mkdir st (user_dir u)
      done)
    (fun u st ->
      for i = 1 to per_user ~users ~total_files u do
        let p = Printf.sprintf "%s/f%d" (user_dir u) i in
        Fsops.create st p;
        Fsops.append st p ~bytes:1024;
        Fsops.unlink st p
      done)

let files_per_second ~total_files (m : Runner.measures) =
  if m.Runner.elapsed_avg <= 0.0 then 0.0
  else float_of_int total_files /. m.Runner.elapsed_avg
