lib/workload/benchmarks.mli: Runner Su_fs
