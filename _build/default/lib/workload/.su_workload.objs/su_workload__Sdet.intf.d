lib/workload/sdet.mli: Runner Su_fs
