lib/workload/tree.ml: Array Fsops Hashtbl List Option Printf Rng Su_fs Su_fstypes Su_util
