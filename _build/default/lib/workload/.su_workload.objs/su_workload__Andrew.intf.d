lib/workload/andrew.mli: Su_fs
