lib/workload/sdet.ml: Fsops Printf Rng Runner State Su_fs Su_util
