lib/workload/andrew.ml: Array Engine Float Fs Fsops List Printf Proc State String Su_fs Su_sim Tree
