lib/workload/runner.mli: Su_core Su_fs
