lib/workload/runner.ml: Array Engine Float Fs Fsops Hashtbl List Printf Proc State Su_cache Su_core Su_driver Su_fs Su_sim
