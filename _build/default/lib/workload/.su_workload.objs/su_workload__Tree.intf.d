lib/workload/tree.mli: Su_fs
