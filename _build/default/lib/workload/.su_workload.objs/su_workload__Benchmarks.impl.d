lib/workload/benchmarks.ml: Fsops Printf Runner Su_fs Tree
