open Su_util
open Su_fs

type node = Dir of string * node list | File of string * int

let rec count_files nodes =
  List.fold_left
    (fun n node ->
      match node with
      | File _ -> n + 1
      | Dir (_, children) -> n + count_files children)
    0 nodes

let rec count_dirs nodes =
  List.fold_left
    (fun n node ->
      match node with
      | File _ -> n
      | Dir (_, children) -> n + 1 + count_dirs children)
    0 nodes

let rec total_bytes nodes =
  List.fold_left
    (fun n node ->
      match node with
      | File (_, size) -> n + size
      | Dir (_, children) -> n + total_bytes children)
    0 nodes

(* Skewed size sample in bytes: mostly small source-code-like files,
   a few large ones. *)
let sample_size rng =
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 | 5 -> 512 + Rng.int rng 3584  (* 0.5-4 KB *)
  | 6 | 7 | 8 -> 4096 + Rng.int rng 28672  (* 4-32 KB *)
  | _ -> 32768 + Rng.int rng 167936  (* 32-200 KB *)

let spec ?(seed = 17) ?(files = 535) ?(total_bytes = 14_300_000) () =
  let rng = Rng.create seed in
  (* a three-level hierarchy of directories *)
  let n_top = 8 in
  let dirs = ref [] in
  for i = 1 to n_top do
    let top = Printf.sprintf "dir%d" i in
    dirs := [ top ] :: !dirs;
    let subs = Rng.int_range rng 1 4 in
    for j = 1 to subs do
      let sub = Printf.sprintf "sub%d" j in
      dirs := [ top; sub ] :: !dirs;
      if Rng.int rng 3 = 0 then
        dirs := [ top; sub; "deep" ] :: !dirs
    done
  done;
  let dirs = Array.of_list ([] :: !dirs) in
  (* draw raw sizes, then scale to the requested total *)
  let raw = Array.init files (fun _ -> sample_size rng) in
  let raw_total = Array.fold_left ( + ) 0 raw in
  let scale = float_of_int total_bytes /. float_of_int raw_total in
  let placed = Hashtbl.create 64 in
  Array.iteri
    (fun i size ->
      let path = Rng.pick rng dirs in
      let size = max 1 (int_of_float (float_of_int size *. scale)) in
      let file = File (Printf.sprintf "f%d" i, size) in
      Hashtbl.replace placed path
        (file :: Option.value ~default:[] (Hashtbl.find_opt placed path)))
    raw;
  (* assemble the forest bottom-up *)
  let files_of path = Option.value ~default:[] (Hashtbl.find_opt placed path) in
  let rec build path names =
    (* group child dirs one level below [path] *)
    let children =
      Array.to_list dirs
      |> List.filter (fun d ->
             List.length d = List.length path + 1
             && (match path with
                 | [] -> true
                 | _ ->
                   List.for_all2 (fun a b -> a = b) path
                     (List.filteri (fun i _ -> i < List.length path) d)))
      |> List.map (fun d ->
             let name = List.nth d (List.length d - 1) in
             Dir (name, build d names))
    in
    files_of path @ children
  in
  build [] ()

let rec populate st ~base nodes =
  List.iter
    (fun node ->
      match node with
      | File (name, size) ->
        let p = base ^ "/" ^ name in
        Fsops.create st p;
        Fsops.append st p ~bytes:size
      | Dir (name, children) ->
        let p = base ^ "/" ^ name in
        Fsops.mkdir st p;
        populate st ~base:p children)
    nodes

let rec copy st ~src ~dst =
  let names =
    List.filter (fun n -> n <> "." && n <> "..") (Fsops.readdir st src)
  in
  List.iter
    (fun name ->
      let s = src ^ "/" ^ name and d = dst ^ "/" ^ name in
      let info = Fsops.stat st s in
      match info.Fsops.st_ftype with
      | Su_fstypes.Types.F_dir ->
        Fsops.mkdir st d;
        copy st ~src:s ~dst:d
      | Su_fstypes.Types.F_reg ->
        ignore (Fsops.read_file st s);
        Fsops.create st d;
        if info.Fsops.st_size > 0 then Fsops.append st d ~bytes:info.Fsops.st_size
      | Su_fstypes.Types.F_free -> ())
    names

let rec remove st path =
  let names =
    List.filter (fun n -> n <> "." && n <> "..") (Fsops.readdir st path)
  in
  List.iter
    (fun name ->
      let p = path ^ "/" ^ name in
      match (Fsops.stat st p).Fsops.st_ftype with
      | Su_fstypes.Types.F_dir -> remove st p
      | Su_fstypes.Types.F_reg | Su_fstypes.Types.F_free -> Fsops.unlink st p)
    names;
  Fsops.rmdir st path
