type t = {
  syscall : float;
  namei_entry : float;
  dirent_update : float;
  inode_update : float;
  alloc_op : float;
  copy_per_frag : float;
  data_per_frag : float;
}

let i486_33 =
  {
    syscall = 1.2e-3;
    namei_entry = 4e-6;
    dirent_update = 300e-6;
    inode_update = 150e-6;
    alloc_op = 500e-6;
    copy_per_frag = 60e-6;
    data_per_frag = 100e-6;
  }
