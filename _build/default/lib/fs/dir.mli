(** Directory entry operations.

    Directories are files of {!Su_fstypes.Types.Dir} blocks. Scanning
    charges CPU per entry examined (the cost that makes the paper's
    create throughput improve with concurrency). Callers hold the
    directory inode's lock across these operations. *)

val lookup : State.t -> State.incore -> string -> int option
(** [lookup st dip name] returns the inode number of [name]. *)

val add_entry : State.t -> State.incore -> string -> int -> unit
(** Insert an entry (growing the directory if needed) and run the
    ordering scheme's link-addition hook against the named inode. *)

val remove_entry :
  State.t -> State.incore -> string -> decrement:(int -> unit) -> bool
(** Remove the entry; [decrement inum] is handed to the ordering
    scheme (it performs the link-count decrement, possibly deferred).
    Returns whether the entry existed. *)

val insert_prepared : State.t -> dir:Su_cache.Buf.t -> slot:int -> string -> int -> unit
(** Low-level insert into a specific (referenced) directory block at
    [slot], running the link-addition hook; used to seed "." and ".."
    into a block that is not yet attached to its directory. *)

val list_names : State.t -> State.incore -> string list
(** All entry names, including "." and "..". *)

val entry_count : State.t -> State.incore -> int

val is_empty : State.t -> State.incore -> bool
(** Only "." and ".." remain. *)
