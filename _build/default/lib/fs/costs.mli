(** CPU cost model, loosely calibrated to the paper's 33 MHz i486.

    Only relative magnitudes matter for reproducing the paper's
    shapes: a syscall costs hundreds of microseconds, a directory scan
    costs microseconds per entry, block copies cost tens of
    microseconds per kilobyte. All values are in seconds. *)

type t = {
  syscall : float;  (** fixed entry/exit + VFS overhead per operation *)
  namei_entry : float;  (** per directory entry scanned *)
  dirent_update : float;  (** insert/remove one entry *)
  inode_update : float;  (** copy in-core inode to its buffer *)
  alloc_op : float;  (** one bitmap search/update *)
  copy_per_frag : float;  (** memory copy, per 1 KB fragment *)
  data_per_frag : float;  (** user/cache data move, per 1 KB fragment *)
}

val i486_33 : t
