(** File data block management: mapping, allocation (with FFS-style
    tail fragments and fragment extension), growth, reads and
    truncation.

    Policy, simplified from FFS: a file whose data fits in the direct
    block pointers may end with a partial fragment run; larger files
    use full blocks throughout. Directories use full blocks. *)

open Su_cache

val add_wdeps : Su_cache.Buf.t -> int list -> unit
(** Attach driver request-id dependencies to a buffer's next write
    (scheduler-chains reuse dependencies). *)

val frags_in_block : State.t -> size:int -> lbn:int -> int
(** Fragments of data held by block index [lbn] of a file of [size]
    bytes (0 when the block is beyond the end). *)

val extent_len : State.t -> size:int -> lbn:int -> int
(** Fragments {e allocated} for block [lbn]: equals
    [frags_in_block] for small files (partial tail run), a full block
    otherwise. *)

val last_lbn : State.t -> size:int -> int
(** Last block index of a file of [size] bytes; -1 when empty. *)

val ptr_at : State.t -> State.incore -> int -> int
(** Fragment address of block [lbn] (0 = hole). Reads indirect blocks
    through the cache as needed. *)

val append : State.t -> State.incore -> bytes:int -> unit
(** Grow the file by [bytes], allocating fragments/blocks/indirect
    blocks, writing data stamps through the cache (delayed writes) and
    invoking the ordering scheme for every allocation. The caller
    holds the inode lock. *)

val grow_dir_block : State.t -> State.incore -> Buf.t * (unit -> unit)
(** Allocate the next directory block (initialised empty) and return
    its referenced buffer plus a [commit] that attaches the block to
    the directory and runs the ordering scheme. Callers that need
    initial entries ("." and "..") insert them — and register their
    link additions — before committing, so the block's first write
    already carries them. *)

val read_all : State.t -> State.incore -> int
(** Read every byte of the file through the cache; returns the number
    of fragments read. *)

val truncate_release : State.t -> State.incore -> free_inode:bool -> unit
(** De-allocate all file data (and the inode itself when
    [free_inode]), honouring the ordering scheme's de-allocation
    discipline. The caller holds the inode lock. *)
