open Su_fstypes
open Su_cache

let with_cg st c f =
  let lbn = Geom.cg_header_frag st.State.geom c in
  let buf = Bcache.bread st.State.cache ~lbn ~nfrags:(State.block_frags st) in
  Fun.protect
    ~finally:(fun () -> Bcache.release st.State.cache buf)
    (fun () ->
      match buf.Buf.content with
      | Buf.Cmeta (Types.Cgroup cg) ->
        Bcache.prepare_modify st.State.cache buf;
        let r = f cg in
        Bcache.bdwrite st.State.cache buf;
        r
      | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Alloc: bad cylinder-group block")

let with_lock st f =
  Su_sim.Sync.Mutex.with_lock st.State.alloc_mutex f

let used = '\001'
let free = '\000'

(* Search the group's data area for [count] contiguous free fragments
   starting at an offset where the run cannot cross a block boundary
   ([aligned] forces block alignment). Returns a group-relative
   offset. *)
let find_run st c (cg : Types.cg) ~count ~aligned =
  let g = st.State.geom in
  let fpb = g.Geom.frags_per_block in
  let base = Geom.cg_base g c in
  let first, total = Geom.cg_data_area g c in
  let rel_first = first - base in
  let rotor = st.State.rotor.(c) in
  let fits off =
    let rec ok i = i >= count || (Bytes.get cg.Types.frag_map (off + i) = free && ok (i + 1)) in
    ok 0
  in
  let step = if aligned then fpb else 1 in
  let candidate off =
    let abs = base + off in
    let in_block_off = abs mod fpb in
    (not aligned || in_block_off = 0)
    && (aligned || in_block_off + count <= fpb)
    && off + count <= rel_first + total
    && fits off
  in
  let norm off =
    let off = if off < rel_first then rel_first else off in
    rel_first + ((off - rel_first) mod total)
  in
  let start =
    let s = norm rotor in
    if aligned then
      (* keep block alignment while stepping; the data area start is
         itself block-aligned, so aligned starts stay aligned *)
      let abs = base + s in
      let skew = abs mod fpb in
      if skew = 0 then s else norm (s + (fpb - skew))
    else s
  in
  let rec scan off remaining =
    if remaining <= 0 then None
    else if candidate off then Some off
    else scan (norm (off + step)) (remaining - step)
  in
  scan start (total + step)

let claim cg off count =
  for i = 0 to count - 1 do
    Bytes.set cg.Types.frag_map (off + i) used
  done;
  cg.Types.nffree <- cg.Types.nffree - count

let alloc_in_group st c ~count ~aligned =
  with_cg st c (fun cg ->
      if cg.Types.nffree < count then None
      else
        match find_run st c cg ~count ~aligned with
        | None -> None
        | Some off ->
          claim cg off count;
          st.State.rotor.(c) <- off + count;
          Some (Geom.cg_base st.State.geom c + off))

let alloc_run st ~cg_hint ~count ~aligned =
  State.charge st st.State.costs.Costs.alloc_op;
  with_lock st (fun () ->
      let ncg = Geom.cg_count st.State.geom in
      let rec try_group i =
        if i >= ncg then failwith "Alloc: file system full"
        else
          let c = (cg_hint + i) mod ncg in
          match alloc_in_group st c ~count ~aligned with
          | Some addr -> addr
          | None -> try_group (i + 1)
      in
      try_group 0)

let alloc_block st ~cg_hint =
  alloc_run st ~cg_hint ~count:(State.block_frags st) ~aligned:true

let alloc_frags st ~cg_hint ~count =
  if count <= 0 || count > State.block_frags st then
    invalid_arg "Alloc.alloc_frags: bad count";
  alloc_run st ~cg_hint ~count ~aligned:(count = State.block_frags st)

let try_extend st ~start ~have ~want =
  if want <= have then invalid_arg "Alloc.try_extend: not an extension";
  let g = st.State.geom in
  let fpb = g.Geom.frags_per_block in
  if (start mod fpb) + want > fpb then false
  else begin
    State.charge st st.State.costs.Costs.alloc_op;
    with_lock st (fun () ->
        let c = Geom.cg_of_frag g start in
        with_cg st c (fun cg ->
            let base = Geom.cg_base g c in
            let off = start - base in
            let extra = want - have in
            let rec all_free i =
              i >= extra
              || (Bytes.get cg.Types.frag_map (off + have + i) = free
                  && all_free (i + 1))
            in
            if all_free 0 then begin
              for i = 0 to extra - 1 do
                Bytes.set cg.Types.frag_map (off + have + i) used
              done;
              cg.Types.nffree <- cg.Types.nffree - extra;
              true
            end
            else false))
  end

let free_run st (start, len) =
  if len <= 0 then invalid_arg "Alloc.free_run: empty run";
  with_lock st (fun () ->
      let g = st.State.geom in
      let c = Geom.cg_of_frag g start in
      with_cg st c (fun cg ->
          let base = Geom.cg_base g c in
          for i = 0 to len - 1 do
            let off = start - base + i in
            if Bytes.get cg.Types.frag_map off = free then
              failwith "Alloc.free_run: double free"
            else Bytes.set cg.Types.frag_map off free
          done;
          cg.Types.nffree <- cg.Types.nffree + len))

let alloc_inode st ~cg_hint ~spread =
  State.charge st st.State.costs.Costs.alloc_op;
  with_lock st (fun () ->
      let g = st.State.geom in
      let ncg = Geom.cg_count g in
      let start =
        if spread then begin
          st.State.next_cg <- (st.State.next_cg + 1) mod ncg;
          st.State.next_cg
        end
        else cg_hint
      in
      let rec try_group i =
        if i >= ncg then failwith "Alloc: out of inodes"
        else
          let c = (start + i) mod ncg in
          match
            with_cg st c (fun cg ->
                if cg.Types.nifree = 0 then None
                else begin
                  let n = g.Geom.inodes_per_cg in
                  let rec find j =
                    if j >= n then None
                    else if Bytes.get cg.Types.inode_map j = free then Some j
                    else find (j + 1)
                  in
                  match find 0 with
                  | None -> None
                  | Some j ->
                    Bytes.set cg.Types.inode_map j used;
                    cg.Types.nifree <- cg.Types.nifree - 1;
                    Some (Geom.first_inum_of_cg g c + j)
                end)
          with
          | Some inum -> inum
          | None -> try_group (i + 1)
      in
      try_group 0)

let free_inode st inum =
  with_lock st (fun () ->
      let g = st.State.geom in
      let c = Geom.cg_of_inode g inum in
      with_cg st c (fun cg ->
          let j = inum - Geom.first_inum_of_cg g c in
          if Bytes.get cg.Types.inode_map j = free then
            failwith "Alloc.free_inode: double free"
          else begin
            Bytes.set cg.Types.inode_map j free;
            cg.Types.nifree <- cg.Types.nifree + 1
          end))

let free_frags_total st =
  let total = ref 0 in
  for c = 0 to Geom.cg_count st.State.geom - 1 do
    with_cg st c (fun cg -> total := !total + cg.Types.nffree)
  done;
  !total
