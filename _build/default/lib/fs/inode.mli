(** In-core inode management.

    The file system always works on an in-core copy of the dinode
    (paper footnote 11); every modification is written through to the
    buffered inode block with {!update}, which marks the block dirty.
    Persistence ordering is the ordering scheme's business. *)

open Su_fstypes

val ibuf_lbn : State.t -> int -> int
(** Fragment address of the inode block holding [inum]. *)

val with_ibuf : State.t -> int -> (Su_cache.Buf.t -> 'a) -> 'a
(** Read (through the cache) the inode block of [inum] and run [f];
    releases the buffer afterwards. *)

val iget : State.t -> int -> State.incore
(** Fetch the in-core inode, reading the inode block if needed. Takes
    a reference; pair with {!iput}. *)

val iput : State.t -> State.incore -> unit

val with_inode : State.t -> int -> (State.incore -> 'a) -> 'a
(** [iget] + locked [f] + [iput]. *)

val update : State.t -> State.incore -> unit
(** Write the in-core fields through to the buffered inode block and
    mark it dirty (delayed write). *)

val allocate : State.t -> ftype:Types.ftype -> cg_hint:int -> spread:bool -> State.incore
(** Allocate a fresh inode, initialise the dinode (link count 0,
    new generation) and write it through. Takes a reference. *)
