(** Block, fragment and inode allocation over the per-group free maps.

    All operations serialise on the file system's allocation mutex and
    mark the affected cylinder-group buffer dirty (free-map updates
    are always delayed writes; they are reconstructible by fsck).
    Frees may run in syncer-daemon context (deferred frees under soft
    updates). *)

val alloc_block : State.t -> cg_hint:int -> int
(** Allocate one full (block-aligned) run of [frags_per_block]
    fragments, preferring the hinted group.
    @raise Failure when the disk is full. *)

val alloc_frags : State.t -> cg_hint:int -> count:int -> int
(** Allocate [count] contiguous fragments that do not cross a block
    boundary (a tail fragment run). *)

val try_extend : State.t -> start:int -> have:int -> want:int -> bool
(** Attempt to extend the fragment run at [start] from [have] to
    [want] fragments in place; returns whether the extra fragments
    were claimed. *)

val free_run : State.t -> int * int -> unit
(** Free a fragment run [(start, len)]. Safe to call from workitems. *)

val alloc_inode : State.t -> cg_hint:int -> spread:bool -> int
(** Allocate an inode number; [spread] selects round-robin placement
    across groups (new directories). *)

val free_inode : State.t -> int -> unit

val free_frags_total : State.t -> int
(** Sum of the groups' free-fragment counters (tests/examples). *)
