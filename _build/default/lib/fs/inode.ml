open Su_fstypes
open Su_cache

let ibuf_lbn st inum = Geom.inode_block_frag st.State.geom inum

let with_ibuf st inum f =
  let buf =
    Bcache.bread st.State.cache ~lbn:(ibuf_lbn st inum)
      ~nfrags:(State.block_frags st)
  in
  (* inode blocks are not materialised by mkfs: a never-written block
     reads back as garbage and stands for all-free dinodes *)
  (match buf.Buf.content with
   | Buf.Cdata _ ->
     buf.Buf.content <- Buf.Cmeta (Types.fresh_inode_block st.State.geom)
   | Buf.Cmeta _ -> ());
  Fun.protect
    ~finally:(fun () -> Bcache.release st.State.cache buf)
    (fun () -> f buf)

let slot_of st inum = Geom.inode_index_in_block st.State.geom inum

let iget st inum =
  match Hashtbl.find_opt st.State.icache inum with
  | Some ip ->
    ip.State.refs <- ip.State.refs + 1;
    ip
  | None ->
    let din =
      with_ibuf st inum (fun buf ->
          match buf.Buf.content with
          | Buf.Cmeta (Types.Inodes dinodes) ->
            Types.copy_dinode dinodes.(slot_of st inum)
          | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Inode.iget: bad inode block")
    in
    (* the read blocked: another process may have installed the inode
       meanwhile — two in-core copies would race and lose updates *)
    (match Hashtbl.find_opt st.State.icache inum with
     | Some ip ->
       ip.State.refs <- ip.State.refs + 1;
       ip
     | None ->
       let ip =
         {
           State.inum;
           din;
           ilock = Su_sim.Sync.Mutex.create st.State.engine;
           refs = 1;
         }
       in
       Hashtbl.replace st.State.icache inum ip;
       ip)

let iput st ip =
  ip.State.refs <- ip.State.refs - 1;
  if ip.State.refs <= 0 then Hashtbl.remove st.State.icache ip.State.inum

let with_inode st inum f =
  let ip = iget st inum in
  Fun.protect
    ~finally:(fun () -> iput st ip)
    (fun () ->
      Su_sim.Sync.Mutex.with_lock ip.State.ilock (fun () -> f ip))

let update st ip =
  State.charge st st.State.costs.Costs.inode_update;
  with_ibuf st ip.State.inum (fun buf ->
      Bcache.prepare_modify st.State.cache buf;
      (match buf.Buf.content with
       | Buf.Cmeta (Types.Inodes dinodes) ->
         dinodes.(slot_of st ip.State.inum) <- Types.copy_dinode ip.State.din
       | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Inode.update: bad inode block");
      Bcache.bdwrite st.State.cache buf)

let allocate st ~ftype ~cg_hint ~spread =
  let inum = Alloc.alloc_inode st ~cg_hint ~spread in
  st.State.gen_counter <- st.State.gen_counter + 1;
  let din = Types.free_dinode st.State.geom in
  din.Types.ftype <- ftype;
  din.Types.nlink <- 0;
  din.Types.gen <- st.State.gen_counter;
  din.Types.mtime <- Su_sim.Engine.now st.State.engine;
  (* a stale in-core inode for a previous life of this number must not
     survive reallocation *)
  Hashtbl.remove st.State.icache inum;
  let ip =
    { State.inum; din; ilock = Su_sim.Sync.Mutex.create st.State.engine; refs = 1 }
  in
  Hashtbl.replace st.State.icache inum ip;
  update st ip;
  ip
