(** Crash injection: stop the world at an arbitrary virtual time (the
    in-flight disk request, if any, is lost — the sector-atomicity
    failure model of the paper) and check the surviving image. *)

val crash_at : Fs.world -> float -> Su_fstypes.Types.cell array
(** Run the engine until the given virtual time, stop it, and return a
    snapshot of the on-disk image. *)

val fsck_image : Fs.world -> Su_fstypes.Types.cell array -> Fsck.report
(** Check an image against the mounted configuration's promises
    (stale-data exposure is only checked when allocation
    initialisation was enforced). *)

val crash_and_check : Fs.world -> float -> Fsck.report
(** [crash_at] followed by [fsck_image]. *)
