let crash_at (w : Fs.world) time =
  Su_sim.Engine.run ~until:time w.Fs.engine;
  Su_sim.Engine.stop w.Fs.engine;
  Su_disk.Disk.image_snapshot w.Fs.disk

let fsck_image (w : Fs.world) image =
  (* journaled configurations replay their log first, exactly as the
     recovery procedure would after a real crash *)
  Fs.recover_image w.Fs.cfg image;
  let check_exposure =
    match w.Fs.cfg.Fs.scheme with
    | Fs.Journaled _ -> false  (* metadata journaling does not cover data *)
    | _ -> w.Fs.cfg.Fs.alloc_init
  in
  Fsck.check ~geom:w.Fs.cfg.Fs.geom ~image ~check_exposure

let crash_and_check w time = fsck_image w (crash_at w time)
