lib/fs/costs.ml:
