lib/fs/fs.ml: Array Bytes Costs Geom Hashtbl State Su_cache Su_core Su_disk Su_driver Su_fstypes Su_sim Types
