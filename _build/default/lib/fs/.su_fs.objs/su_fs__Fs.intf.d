lib/fs/fs.mli: Costs Geom State Su_cache Su_disk Su_driver Su_fstypes Su_sim
