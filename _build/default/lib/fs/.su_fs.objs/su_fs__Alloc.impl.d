lib/fs/alloc.ml: Array Bcache Buf Bytes Costs Fun Geom State Su_cache Su_fstypes Su_sim Types
