lib/fs/file.ml: Alloc Array Bcache Buf Costs Fun Geom Inode List State Su_cache Su_core Su_fstypes Su_sim Types
