lib/fs/state.mli: Costs Geom Hashtbl Su_cache Su_core Su_disk Su_driver Su_fstypes Su_sim Types
