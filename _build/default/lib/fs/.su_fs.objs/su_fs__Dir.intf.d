lib/fs/dir.mli: State Su_cache
