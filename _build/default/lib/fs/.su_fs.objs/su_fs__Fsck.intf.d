lib/fs/fsck.mli: Format Geom Su_fstypes Types
