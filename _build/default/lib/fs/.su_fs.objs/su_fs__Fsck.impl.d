lib/fs/fsck.ml: Array Bytes Format Geom Hashtbl List Option Printf Queue String Su_core Su_fstypes Types
