lib/fs/alloc.mli: State
