lib/fs/crash.ml: Fs Fsck Su_disk Su_sim
