lib/fs/fsops.mli: State Su_fstypes
