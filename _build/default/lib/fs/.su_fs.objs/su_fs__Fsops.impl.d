lib/fs/fsops.ml: Costs Dir File Fun Geom Inode List State String Su_cache Su_core Su_fstypes Types
