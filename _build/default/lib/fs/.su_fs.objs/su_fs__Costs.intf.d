lib/fs/costs.mli:
