lib/fs/file.mli: Buf State Su_cache
