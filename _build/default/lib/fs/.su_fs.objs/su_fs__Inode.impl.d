lib/fs/inode.ml: Alloc Array Bcache Buf Costs Fun Geom Hashtbl State Su_cache Su_fstypes Su_sim Types
