lib/fs/inode.mli: State Su_cache Su_fstypes Types
