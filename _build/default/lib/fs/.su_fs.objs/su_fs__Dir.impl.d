lib/fs/dir.ml: Array Bcache Buf Costs File Fun Geom Inode List Option State Su_cache Su_core Su_fstypes Types
