lib/fs/crash.mli: Fs Fsck Su_fstypes
