lib/fstypes/geom.ml:
