lib/fstypes/types.ml: Array Bytes Format Geom List
