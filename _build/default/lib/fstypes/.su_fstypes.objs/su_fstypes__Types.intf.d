lib/fstypes/types.mli: Bytes Format Geom
