lib/fstypes/geom.mli:
