(** File system geometry and on-disk layout arithmetic.

    The layout is a simplified Berkeley FFS: the disk is divided into
    fragments (the I/O addressing unit), eight fragments form a block,
    and the disk is split into cylinder groups, each holding a header
    block (allocation bitmaps), a run of inode blocks, and a data
    area. Fragment address 0 is inside the superblock and therefore
    doubles as the null block pointer. *)

type t = {
  nfrags : int;  (** total disk size in fragments *)
  frag_bytes : int;  (** fragment size in bytes (1024) *)
  frags_per_block : int;  (** fragments per full block (8) *)
  cg_frags : int;  (** fragments per cylinder group *)
  inodes_per_cg : int;
  inodes_per_block : int;  (** dinodes packed per inode block *)
  dir_capacity : int;  (** directory entries per directory block *)
  ndaddr : int;  (** direct block pointers per inode (12) *)
  nindir : int;  (** block pointers per indirect block *)
}

val default : t
(** 1 GB disk: 1,048,576 fragments, 64 cylinder groups of 16 MB. *)

val small : t
(** 64 MB disk for tests: same structure, 4 cylinder groups. *)

val v : ?mb:int -> ?cg_mb:int -> ?inodes_per_cg:int -> unit -> t
(** Build a geometry of [mb] megabytes (default 1024) with [cg_mb]
    megabyte groups (default 16).
    @raise Invalid_argument on inconsistent sizes. *)

val block_bytes : t -> int
val cg_count : t -> int
val total_inodes : t -> int

val cg_of_frag : t -> int -> int
(** Cylinder group containing a fragment address. *)

val cg_base : t -> int -> int
(** First fragment of cylinder group [c]. *)

val cg_sb_frag : t -> int -> int
(** Fragment address of group [c]'s superblock copy (the primary
    superblock for group 0). *)

val cg_header_frag : t -> int -> int
(** Fragment address of group [c]'s header (bitmap) block. *)

val cg_inode_area : t -> int -> int * int
(** [(first, count)] fragment range of group [c]'s inode blocks. *)

val cg_data_area : t -> int -> int * int
(** [(first, count)] fragment range of group [c]'s data area; [first]
    is block-aligned. *)

val inode_block_frag : t -> int -> int
(** Fragment address of the inode block holding inode [inum]. *)

val inode_index_in_block : t -> int -> int

val cg_of_inode : t -> int -> int

val first_inum_of_cg : t -> int -> int

val valid_inum : t -> int -> bool
(** Inode numbers run from 2 (root) upward; 0 and 1 are reserved. *)

val root_inum : int

val data_frag_in_cg : t -> int -> bool
(** Whether a fragment address lies in some group's data area. *)

val frags_of_bytes : t -> int -> int
(** Fragments needed to store [bytes] (rounded up, min 0). *)

val blocks_of_bytes : t -> int -> int
