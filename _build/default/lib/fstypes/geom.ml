type t = {
  nfrags : int;
  frag_bytes : int;
  frags_per_block : int;
  cg_frags : int;
  inodes_per_cg : int;
  inodes_per_block : int;
  dir_capacity : int;
  ndaddr : int;
  nindir : int;
}

let root_inum = 2

let v ?(mb = 1024) ?(cg_mb = 16) ?(inodes_per_cg = 2048) () =
  let frag_bytes = 1024 in
  let frags_per_block = 8 in
  let nfrags = mb * 1024 in
  let cg_frags = cg_mb * 1024 in
  if nfrags mod cg_frags <> 0 then
    invalid_arg "Geom.v: disk size must be a multiple of the group size";
  let inodes_per_block = 64 in
  if inodes_per_cg mod inodes_per_block <> 0 then
    invalid_arg "Geom.v: inodes_per_cg must pack whole inode blocks";
  {
    nfrags;
    frag_bytes;
    frags_per_block;
    cg_frags;
    inodes_per_cg;
    inodes_per_block;
    dir_capacity = 128;
    ndaddr = 12;
    nindir = 2048;
  }

let default = v ()
let small = v ~mb:64 ~cg_mb:16 ~inodes_per_cg:1024 ()

let block_bytes g = g.frag_bytes * g.frags_per_block
let cg_count g = g.nfrags / g.cg_frags
let total_inodes g = cg_count g * g.inodes_per_cg

let cg_of_frag g frag = frag / g.cg_frags
let cg_base g c = c * g.cg_frags

(* Each group: [superblock copy][header (bitmaps)][inode blocks][data].
   The primary superblock is the copy in group 0. *)
let cg_sb_frag g c = cg_base g c
let cg_header_frag g c = cg_base g c + g.frags_per_block

let inode_frags g = g.inodes_per_cg / g.inodes_per_block * g.frags_per_block

let cg_inode_area g c = (cg_base g c + (2 * g.frags_per_block), inode_frags g)

let cg_frags_end g c = cg_base g c + g.cg_frags

let cg_data_area g c =
  let first = cg_base g c + (2 * g.frags_per_block) + inode_frags g in
  (first, cg_frags_end g c - first)

let cg_of_inode g inum = (inum - root_inum) / g.inodes_per_cg

let first_inum_of_cg g c = root_inum + (c * g.inodes_per_cg)

let inode_block_frag g inum =
  let c = cg_of_inode g inum in
  let idx = inum - first_inum_of_cg g c in
  let blk = idx / g.inodes_per_block in
  let first, _ = cg_inode_area g c in
  first + (blk * g.frags_per_block)

let inode_index_in_block g inum =
  (inum - root_inum) mod g.inodes_per_cg mod g.inodes_per_block

let valid_inum g inum = inum >= root_inum && inum < root_inum + total_inodes g

let data_frag_in_cg g frag =
  frag > 0 && frag < g.nfrags
  &&
  let c = cg_of_frag g frag in
  let first, count = cg_data_area g c in
  frag >= first && frag < first + count

let frags_of_bytes g bytes =
  if bytes <= 0 then 0 else ((bytes - 1) / g.frag_bytes) + 1

let blocks_of_bytes g bytes =
  if bytes <= 0 then 0 else ((bytes - 1) / block_bytes g) + 1
