(** Reproductions of every figure and table in the paper's evaluation,
    plus the ablations discussed in the text. Each experiment returns
    printable tables; absolute values are simulator-scale, the shapes
    are what reproduce the paper (see EXPERIMENTS.md).

    [scale] trades fidelity for wall-clock time: [`Full] uses the
    paper's workload sizes (10,000 files, 1-8 users, several
    repetitions), [`Quick] shrinks them for smoke runs. *)

type scale = [ `Full | `Quick ]

val fig1 : scale -> Su_util.Text_table.t
(** Ordering-flag semantics (Full/Back/Part/Part-NR/Ignore), 4-user
    copy: elapsed time and average disk access time. *)

val fig2 : scale -> Su_util.Text_table.t
(** Flag semantics (Part/Full-NR/Back-NR/Part-NR/Ignore), 1-user
    remove: elapsed time and average driver response time. *)

val fig3 : scale -> Su_util.Text_table.t
(** Part / -NR / -CB / -NR/CB implementations, 4-user copy. *)

val fig4 : scale -> Su_util.Text_table.t
(** Same four implementations, 4-user remove. *)

val fig5 : scale -> Su_util.Text_table.t list
(** Metadata update throughput (files/second) vs concurrency:
    (a) 1 KB creates, (b) removes, (c) create/removes. *)

val tab1 : scale -> Su_util.Text_table.t
(** 4-user copy across the five schemes, with and without allocation
    initialisation: elapsed, % of No Order, CPU, disk requests,
    average I/O response time. *)

val tab2 : scale -> Su_util.Text_table.t
(** 4-user remove across the five schemes. *)

val tab3 : scale -> Su_util.Text_table.t
(** Andrew benchmark: five phases plus total, per scheme. *)

val fig6 : scale -> Su_util.Text_table.t
(** Sdet throughput (scripts/hour) vs script concurrency. *)

val chains_dealloc_ablation : scale -> Su_util.Text_table.t
(** §3.2: scheduler chains with barrier-based vs specific
    de-allocation dependencies, 4-user remove. *)

val cb_ablation : scale -> Su_util.Text_table.t
(** §3.3: the block-copy enhancement for scheduler chains, 4-user
    copy and remove. *)

val crash_consistency : scale -> Su_util.Text_table.t
(** Crash-injection sweep: fsck violations and repairable leftovers
    per scheme over a grid of crash points. *)

val soft_updates_ablation : scale -> Su_util.Text_table.t
(** Sensitivity of soft updates to syncer interval and cache size
    (4-user copy). *)

val nvram_comparison : scale -> Su_util.Text_table.t
(** Extension (paper §7 future work): conventional synchronous writes
    over a battery-backed NVRAM write cache versus soft updates. The
    paper predicts NVRAM gives slight improvements over soft updates
    at high hardware cost. *)

val aging : scale -> Su_util.Text_table.t
(** Extension: age the volume with create/delete churn, then compare a
    tree copy on the aged volume against a fresh one — FFS-style
    allocation degrades as the free space fragments. *)

val journal_comparison : scale -> Su_util.Text_table.t
(** Extension (paper §7 future work): write-ahead metadata journaling
    — synchronous commit and delayed group commit — against
    conventional, soft updates and the no-order bound, on the 4-user
    copy and remove benchmarks. The paper predicts logging needs
    group commit to match soft updates. *)

val all : scale -> (string * (unit -> Su_util.Text_table.t list)) list
(** Every experiment, in paper order, keyed by its identifier; each is
    a thunk so callers can run a subset. *)
