lib/experiments/experiments.mli: Su_util
