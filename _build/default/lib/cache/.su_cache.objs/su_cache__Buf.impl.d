lib/cache/buf.ml: Array Su_fstypes Su_sim Types
