lib/cache/syncer.mli: Bcache Su_sim
