lib/cache/syncer.ml: Array Bcache Buf List Su_sim
