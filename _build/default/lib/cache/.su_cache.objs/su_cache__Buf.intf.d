lib/cache/buf.mli: Su_fstypes Su_sim
