lib/cache/bcache.ml: Array Buf Engine Fun Hashtbl List Printf Proc Su_driver Su_fstypes Su_sim Sync
