lib/cache/bcache.mli: Buf Su_driver Su_sim
