open Su_sim

type hooks = {
  mutable pre_write : Buf.t -> Buf.content * bool;
  mutable post_write : Buf.t -> unit;
  mutable pre_invalidate : Buf.t -> unit;
}

type config = {
  capacity_frags : int;
  cb : bool;
  copy_cost : int -> unit;
}

let default_config =
  { capacity_frags = 32 * 1024; cb = false; copy_cost = (fun _ -> ()) }

type t = {
  engine : Engine.t;
  driver : Su_driver.Driver.t;
  config : config;
  hooks : hooks;
  tbl : (int, Buf.t) Hashtbl.t;
  mutable used : int;
  mutable copies : int;  (* fragments held by in-flight write snapshots *)
  mutable ndirty : int;
  mutable lru_counter : int;
  space_waiters : Sync.Waitq.t;
  mutable workitems : (unit -> unit) list;  (* reversed *)
}

let default_hooks () =
  {
    pre_write = (fun b -> (Buf.copy_content b.Buf.content, false));
    post_write = (fun _ -> ());
    pre_invalidate = (fun _ -> ());
  }

let create ~engine ~driver config =
  {
    engine;
    driver;
    config;
    hooks = default_hooks ();
    tbl = Hashtbl.create 4096;
    used = 0;
    copies = 0;
    ndirty = 0;
    lru_counter = 0;
    space_waiters = Sync.Waitq.create engine;
    workitems = [];
  }

let hooks t = t.hooks
let engine t = t.engine
let driver t = t.driver
let cb_enabled t = t.config.cb
let dirty_count t = t.ndirty
let used_frags t = t.used

let touch t (b : Buf.t) =
  t.lru_counter <- t.lru_counter + 1;
  b.Buf.lru_stamp <- t.lru_counter

let lookup t lbn = Hashtbl.find_opt t.tbl lbn

let all_bufs t = Hashtbl.fold (fun _ b acc -> b :: acc) t.tbl []

let sorted_keys t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
  let arr = Array.of_list keys in
  Array.sort compare arr;
  arr

let set_dirty t (b : Buf.t) v =
  if b.Buf.dirty <> v then begin
    b.Buf.dirty <- v;
    t.ndirty <- t.ndirty + (if v then 1 else -1)
  end

let bdwrite t b = set_dirty t b true

(* --- write-out ------------------------------------------------------ *)

let finish_write t (b : Buf.t) =
  b.Buf.io_count <- b.Buf.io_count - 1;
  if b.Buf.io_count = 0 then begin
    b.Buf.io_locked <- false;
    Sync.Waitq.broadcast b.Buf.lock_waiters;
    let ws = b.Buf.write_waiters in
    b.Buf.write_waiters <- [];
    List.iter (fun w -> Engine.soon t.engine w) ws
  end;
  if b.Buf.valid then t.hooks.post_write b;
  Sync.Waitq.signal t.space_waiters

let bawrite ?flagged ?deps ?(sync = false) ?notify t (b : Buf.t) =
  (* The issue-time snapshot occupies real memory until the write
     completes. When snapshots (plus the cache) exceed memory, the
     writer must wait — the paper's observation that block copying
     "does not behave well when system activity exceeds the available
     memory". Only process-context callers can reach this point with
     the budget exhausted (the syncer, scheme hooks, evictions). *)
  if t.config.cb then begin
    let attempts = ref 0 in
    while
      t.copies + b.Buf.nfrags > t.config.capacity_frags
      && Su_sim.Proc.self_opt () <> None
    do
      incr attempts;
      if !attempts > 1_000_000 then
        failwith "Bcache: copy memory never freed";
      Sync.Waitq.wait t.space_waiters
    done;
    t.copies <- t.copies + b.Buf.nfrags
  end;
  let payload, keep_dirty = t.hooks.pre_write b in
  t.config.copy_cost b.Buf.nfrags;
  let cells = Buf.to_cells payload ~nfrags:b.Buf.nfrags in
  let flagged = match flagged with Some f -> f | None -> b.Buf.wflag in
  let deps = match deps with Some d -> d | None -> b.Buf.wdeps in
  b.Buf.wflag <- false;
  b.Buf.wdeps <- [];
  set_dirty t b keep_dirty;
  b.Buf.io_count <- b.Buf.io_count + 1;
  if not t.config.cb then b.Buf.io_locked <- true;
  Su_driver.Driver.submit t.driver ~kind:Su_driver.Request.Write ~lbn:b.Buf.key
    ~nfrags:b.Buf.nfrags ~flagged ~deps ~sync ~payload:cells
    ~on_complete:(fun _ ->
      if t.config.cb then begin
        t.copies <- t.copies - b.Buf.nfrags;
        Sync.Waitq.signal t.space_waiters
      end;
      finish_write t b;
      match notify with Some f -> f () | None -> ())
    ()

let wait_write _t (b : Buf.t) =
  if b.Buf.io_count > 0 then
    Proc.suspend (fun resume ->
        b.Buf.write_waiters <- resume :: b.Buf.write_waiters)

let bwrite_sync t (b : Buf.t) =
  (* Wait for in-flight writes of this buffer first: real systems
     never have two writes of one buffer outstanding on this path, and
     the soft-updates completion bookkeeping relies on single-flight
     metadata writes. *)
  while b.Buf.io_count > 0 do
    wait_write t b
  done;
  let iv : unit Proc.Ivar.t = Proc.Ivar.create t.engine in
  ignore (bawrite ~sync:true ~notify:(fun () -> Proc.Ivar.fill iv ()) t b);
  Proc.Ivar.read iv

let prepare_modify t (b : Buf.t) =
  if not t.config.cb then
    while b.Buf.io_locked do
      Sync.Waitq.wait b.Buf.lock_waiters
    done

(* --- space management ----------------------------------------------- *)

let remove_from_table t (b : Buf.t) =
  if b.Buf.valid then begin
    b.Buf.valid <- false;
    Hashtbl.remove t.tbl b.Buf.key;
    t.used <- t.used - b.Buf.nfrags;
    if b.Buf.dirty then begin
      b.Buf.dirty <- false;
      t.ndirty <- t.ndirty - 1
    end
  end

let invalidate t (b : Buf.t) =
  if b.Buf.valid then begin
    t.hooks.pre_invalidate b;
    remove_from_table t b;
    Sync.Waitq.signal t.space_waiters
  end

let evictable (b : Buf.t) =
  b.Buf.valid && b.Buf.refcount = 0 && b.Buf.io_count = 0 && not b.Buf.sticky

let pick_victim t =
  (* Prefer the least-recently-used clean buffer; fall back to the
     least-recently-used dirty one (which we must write first). *)
  let best_clean = ref None and best_dirty = ref None in
  let consider slot (b : Buf.t) =
    match !slot with
    | None -> slot := Some b
    | Some cur -> if b.Buf.lru_stamp < cur.Buf.lru_stamp then slot := Some b
  in
  Hashtbl.iter
    (fun _ b ->
      if evictable b then
        if b.Buf.dirty then consider best_dirty b else consider best_clean b)
    t.tbl;
  match !best_clean with Some b -> Some b | None -> !best_dirty

let ensure_space t needed =
  let attempts = ref 0 in
  while t.used + needed > t.config.capacity_frags do
    incr attempts;
    if !attempts > 100_000 then
      failwith "Bcache: cannot reclaim space (all buffers busy)";
    match pick_victim t with
    | None -> Sync.Waitq.wait t.space_waiters
    | Some b ->
      if b.Buf.dirty then begin
        ignore (bawrite t b);
        wait_write t b;
        (* it may have been re-dirtied by a rollback; if so, it stays
           and we try another victim *)
        if (not b.Buf.dirty) && evictable b then invalidate t b
      end
      else invalidate t b
  done

(* --- lookup / read --------------------------------------------------- *)

let new_buf t ~lbn ~nfrags content =
  let b =
    {
      Buf.key = lbn;
      nfrags;
      content;
      dirty = false;
      io_count = 0;
      io_locked = false;
      valid = true;
      refcount = 1;
      lru_stamp = 0;
      wflag = false;
      wdeps = [];
      aux = None;
      sticky = false;
      syncer_marked = false;
      lock_waiters = Sync.Waitq.create t.engine;
      write_waiters = [];
    }
  in
  touch t b;
  Hashtbl.replace t.tbl lbn b;
  t.used <- t.used + nfrags;
  b

let getblk t ~lbn ~nfrags ~init =
  match Hashtbl.find_opt t.tbl lbn with
  | Some b ->
    if b.Buf.nfrags <> nfrags then
      invalid_arg
        (Printf.sprintf "Bcache.getblk: extent mismatch at %d (%d vs %d)" lbn
           b.Buf.nfrags nfrags);
    b.Buf.refcount <- b.Buf.refcount + 1;
    touch t b;
    b
  | None ->
    ensure_space t nfrags;
    new_buf t ~lbn ~nfrags (init ())

let bread t ~lbn ~nfrags =
  match Hashtbl.find_opt t.tbl lbn with
  | Some b ->
    if b.Buf.nfrags <> nfrags then
      invalid_arg
        (Printf.sprintf "Bcache.bread: extent mismatch at %d (%d vs %d)" lbn
           b.Buf.nfrags nfrags);
    b.Buf.refcount <- b.Buf.refcount + 1;
    touch t b;
    b
  | None ->
    ensure_space t nfrags;
    let iv : Su_fstypes.Types.cell array Proc.Ivar.t = Proc.Ivar.create t.engine in
    ignore
      (Su_driver.Driver.submit t.driver ~kind:Su_driver.Request.Read ~lbn
         ~nfrags ~sync:true
         ~on_complete:(fun data ->
           match data with
           | Some cells -> Proc.Ivar.fill iv cells
           | None -> invalid_arg "Bcache.bread: read returned no data")
         ());
    let cells = Proc.Ivar.read iv in
    (* another process may have created the buffer while we waited *)
    (match Hashtbl.find_opt t.tbl lbn with
     | Some b ->
       b.Buf.refcount <- b.Buf.refcount + 1;
       touch t b;
       b
     | None -> new_buf t ~lbn ~nfrags (Buf.of_cells cells))

let release t (b : Buf.t) =
  if b.Buf.refcount <= 0 then invalid_arg "Bcache.release: not referenced";
  b.Buf.refcount <- b.Buf.refcount - 1;
  touch t b;
  if b.Buf.refcount = 0 then Sync.Waitq.signal t.space_waiters

let with_buf t b f = Fun.protect ~finally:(fun () -> release t b) (fun () -> f b)

let set_extent t (b : Buf.t) ~nfrags content =
  t.used <- t.used - b.Buf.nfrags + nfrags;
  b.Buf.nfrags <- nfrags;
  b.Buf.content <- content

(* --- workitems ------------------------------------------------------- *)

let add_workitem t f = t.workitems <- f :: t.workitems

let take_workitems t =
  let items = List.rev t.workitems in
  t.workitems <- [];
  items

(* --- full flush ------------------------------------------------------ *)

let sync_all t =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    if !rounds > 1000 then failwith "Bcache.sync_all: no convergence";
    List.iter (fun item -> item ()) (take_workitems t);
    let dirty =
      List.filter
        (fun (b : Buf.t) -> b.Buf.dirty && b.Buf.valid && b.Buf.io_count = 0)
        (all_bufs t)
    in
    List.iter
      (fun b ->
        ignore (bawrite t b);
        wait_write t b)
      dirty;
    Su_driver.Driver.quiesce t.driver;
    continue_ := t.ndirty > 0 || t.workitems <> []
  done
