open Su_cache

let make cache =
  let flagged_write b = ignore (Bcache.bawrite ~flagged:true cache b) in
  {
    Scheme_intf.name = "Scheduler Flag";
    link_add = (fun ~dir:_ ~slot:_ ~ibuf ~inum:_ -> flagged_write ibuf);
    link_remove =
      (fun ~dir ~slot:_ ~inum:_ ~ibuf:_ ~decrement ->
        flagged_write dir;
        decrement ());
    block_alloc =
      (fun req ->
        if req.Scheme_intf.init_required then flagged_write req.Scheme_intf.data;
        if req.Scheme_intf.freed <> [] then flagged_write req.Scheme_intf.owner;
        req.Scheme_intf.free_moved ());
    block_dealloc =
      (fun ~ibuf ~inum:_ ~runs:_ ~inode_freed:_ ~do_free ->
        flagged_write ibuf;
        do_free ());
    reuse_frag_deps = (fun _ -> []);
    reuse_inode_deps = (fun _ -> []);
    fsync = Scheme_intf.sync_write_fsync cache;
  }
