lib/core/sched_chains.ml: Bcache Buf Hashtbl List Scheme_intf Su_cache Su_driver
