lib/core/no_order.mli: Scheme_intf Su_cache
