lib/core/sched_flag.ml: Bcache Scheme_intf Su_cache
