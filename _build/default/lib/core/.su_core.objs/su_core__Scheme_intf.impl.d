lib/core/scheme_intf.ml: Bcache Buf Su_cache
