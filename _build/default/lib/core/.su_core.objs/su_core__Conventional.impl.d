lib/core/conventional.ml: Bcache Scheme_intf Su_cache
