lib/core/sched_chains.mli: Scheme_intf Su_cache
