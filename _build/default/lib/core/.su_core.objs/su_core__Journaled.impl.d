lib/core/journaled.ml: Array Bcache Buf Bytes Geom Hashtbl List Queue Scheme_intf Su_cache Su_driver Su_fstypes Su_sim Types
