lib/core/softdep.mli: Scheme_intf Su_cache Su_fstypes
