lib/core/conventional.mli: Scheme_intf Su_cache
