lib/core/no_order.ml: Scheme_intf
