lib/core/sched_flag.mli: Scheme_intf Su_cache
