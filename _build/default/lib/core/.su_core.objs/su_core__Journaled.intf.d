lib/core/journaled.mli: Scheme_intf Su_cache Su_fstypes
