lib/core/softdep.ml: Array Bcache Buf Geom Hashtbl List Scheme_intf Su_cache Su_fstypes Types
