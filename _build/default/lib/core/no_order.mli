(** The "No Order" baseline: delayed writes everywhere, ordering
    constraints ignored. Fast and unsafe — equivalent to the paper's
    delayed-mount baseline. *)

val make : Su_cache.Bcache.t -> Scheme_intf.t
