(** The scheduler-chains scheme (§3.2): asynchronous writes tagged
    with explicit lists of request ids they must follow.

    De-allocated resources are reusable immediately, but the scheme
    remembers which request re-initialises the old pointer; a new
    owner of the resource (and the newly allocated block itself) is
    made dependent on that request — the paper's better-performing
    "second approach". [make ~barrier_dealloc:true] selects the
    simpler fallback instead: the pointer-reset write is issued as a
    flagged barrier (used for the §3.2 ablation). *)

val make : ?barrier_dealloc:bool -> Su_cache.Bcache.t -> Scheme_intf.t
