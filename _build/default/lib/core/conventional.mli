(** The conventional scheme: synchronous writes sequence metadata
    updates, exactly as in classic FFS derivatives. The calling
    process blocks for each prerequisite write; the last update in
    every sequence remains a delayed write (paper §6.1). *)

val make : Su_cache.Bcache.t -> Scheme_intf.t
