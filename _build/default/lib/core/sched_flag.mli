(** The scheduler-flag scheme (§3.1): writes that later updates depend
    on are issued asynchronously with the one-bit ordering flag set;
    the device driver's flag semantics (Full/Back/Part, ±NR) do the
    sequencing. The flag's meaning lives in the driver configuration —
    this module only decides {e which} writes carry the flag. *)

val make : Su_cache.Bcache.t -> Scheme_intf.t
