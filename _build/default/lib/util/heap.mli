(** Imperative binary min-heap, ordered by a user-supplied comparison.

    Used for the simulation event queue and by disk schedulers. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty heap; [cmp] must be a total order. Ties are broken by
    insertion order only if the caller encodes a sequence number in the
    elements — the heap itself is not stable. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, or [None] when empty. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in unspecified order. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keep only elements satisfying the predicate. O(n) rebuild. *)
