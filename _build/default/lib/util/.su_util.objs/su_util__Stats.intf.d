lib/util/stats.mli:
