lib/util/heap.mli:
