lib/util/rng.mli:
