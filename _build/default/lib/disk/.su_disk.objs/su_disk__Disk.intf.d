lib/disk/disk.mli: Disk_params Su_fstypes Su_sim
