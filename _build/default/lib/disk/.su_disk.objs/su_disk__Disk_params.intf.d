lib/disk/disk_params.mli:
