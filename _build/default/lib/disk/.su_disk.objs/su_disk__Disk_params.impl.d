lib/disk/disk_params.ml:
