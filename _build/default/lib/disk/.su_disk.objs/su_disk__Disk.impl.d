lib/disk/disk.ml: Array Disk_params Float Hashtbl List Queue Su_fstypes Su_sim Types
