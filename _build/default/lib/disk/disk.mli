(** Simulated disk device.

    The disk services one request at a time (the paper's setup does
    not use command queueing); the device driver above it is
    responsible for scheduling. Service time = controller overhead +
    seek + rotational latency + rotation-synchronous transfer, with a
    segmented on-board cache that satisfies sequential reads at
    near-zero mechanical cost.

    The disk owns the persistent {e image}: one {!Su_fstypes.Types.cell}
    per fragment. A write's payload is applied to the image atomically
    at completion time — stopping the engine mid-request therefore
    models a crash with the in-flight request lost, matching the
    paper's sector-atomicity assumption. *)

type t

type op = Read | Write

val create :
  engine:Su_sim.Engine.t ->
  params:Disk_params.t ->
  nfrags:int ->
  ?nvram_frags:int ->
  unit ->
  t
(** @raise Invalid_argument if [nfrags] exceeds the drive capacity.

    [nvram_frags] (> 0) adds a battery-backed write cache: a write
    whose payload fits completes at electronic speed and is durable on
    acceptance (the image is updated immediately — NVRAM survives the
    crash); the occupied space destages to the platters during idle
    time at mechanical cost. Writes that do not fit fall back to
    mechanical service. *)

val busy : t -> bool

val submit :
  t ->
  lbn:int ->
  nfrags:int ->
  op:op ->
  payload:Su_fstypes.Types.cell array option ->
  on_done:(Su_fstypes.Types.cell array option -> float -> unit) ->
  unit
(** Start servicing a request. [payload] is required for writes
    (length [nfrags]) and must already be a private snapshot. The
    completion callback receives the read data (deep-copied, for
    reads) and the access (service) time, and runs in engine-event
    context.
    @raise Invalid_argument if the disk is busy or arguments are
    malformed. *)

val install : t -> int -> Su_fstypes.Types.cell -> unit
(** Write a cell directly into the image with no timing (mkfs). *)

val peek : t -> int -> Su_fstypes.Types.cell
(** Read the image directly (fsck / tests); no copy, do not mutate. *)

val image_snapshot : t -> Su_fstypes.Types.cell array
(** Deep copy of the whole image (crash-state capture). *)

val nfrags : t -> int
val requests_serviced : t -> int
val total_service_time : t -> float

val set_idle_callback : t -> (unit -> unit) -> unit
(** Invoked (engine context) when a background NVRAM destage finishes
    and the device is idle again — the driver uses it to re-dispatch,
    since no foreground completion fires. *)

val nvram_pending : t -> int
(** Fragments accepted into NVRAM and not yet destaged. *)

val destages : t -> int
(** Background destage operations performed. *)
