type t = {
  rpm : float;
  seek_single : float;
  seek_avg : float;
  seek_max : float;
  cylinders : int;
  frags_per_track : int;
  tracks_per_cyl : int;
  overhead : float;
  cache_segments : int;
  prefetch_frags : int;
}

let hp_c2447 =
  {
    rpm = 5400.0;
    seek_single = 0.0025;
    seek_avg = 0.010;
    seek_max = 0.022;
    cylinders = 2100;
    frags_per_track = 28;
    tracks_per_cyl = 18;
    overhead = 0.0007;
    cache_segments = 2;
    prefetch_frags = 64;
  }

let rotation_time p = 60.0 /. p.rpm

let frags_per_cyl p = p.frags_per_track * p.tracks_per_cyl

let seek_time p distance =
  if distance <= 0 then 0.0
  else if distance = 1 then p.seek_single
  else
    let frac = sqrt (float_of_int (distance - 1))
               /. sqrt (float_of_int (p.cylinders - 2)) in
    p.seek_single +. ((p.seek_max -. p.seek_single) *. frac)

let capacity_frags p = p.cylinders * frags_per_cyl p
