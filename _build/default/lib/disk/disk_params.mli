(** Mechanical disk parameters.

    The default preset approximates the HP C2447 used in the paper: a
    1 GB, 5400 RPM SCSI drive with roughly 10 ms average seek and a
    small on-board cache that prefetches sequentially. *)

type t = {
  rpm : float;
  seek_single : float;  (** single-cylinder seek, seconds *)
  seek_avg : float;  (** average seek, seconds (documentation only) *)
  seek_max : float;  (** full-stroke seek, seconds *)
  cylinders : int;
  frags_per_track : int;  (** 1 KB fragments per track *)
  tracks_per_cyl : int;  (** heads *)
  overhead : float;  (** controller/command overhead per request *)
  cache_segments : int;  (** concurrent sequential read streams cached *)
  prefetch_frags : int;  (** readahead window per stream *)
}

val hp_c2447 : t

val rotation_time : t -> float
(** Seconds per revolution. *)

val frags_per_cyl : t -> int

val seek_time : t -> int -> float
(** [seek_time p distance] for a move of [distance] cylinders; 0 for
    distance 0. Square-root curve anchored at the single-cylinder and
    full-stroke points. *)

val capacity_frags : t -> int
