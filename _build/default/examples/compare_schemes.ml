(* Scheme comparison on the paper's headline workloads, at reduced
   scale so it finishes in seconds: a 2-user tree copy and a 2-user
   tree remove.

   Run with: dune exec examples/compare_schemes.exe *)

open Su_fs
open Su_workload
open Su_util

let () =
  let users = 2 in
  let copy_t =
    Text_table.create ~title:"2-user tree copy (small trees)"
      ~headers:[ "scheme"; "elapsed (s)"; "CPU (s)"; "disk requests"; "response (ms)" ]
  in
  let remove_t =
    Text_table.create ~title:"2-user tree remove"
      ~headers:[ "scheme"; "elapsed (s)"; "CPU (s)"; "disk requests"; "response (ms)" ]
  in
  List.iter
    (fun scheme ->
      let cfg = Fs.config ~scheme () in
      let row (m : Runner.measures) =
        [
          Fs.scheme_kind_name scheme;
          Printf.sprintf "%.2f" m.Runner.elapsed_avg;
          Printf.sprintf "%.2f" m.Runner.cpu_total;
          string_of_int m.Runner.disk_requests;
          Printf.sprintf "%.1f" m.Runner.avg_response_ms;
        ]
      in
      Text_table.add_row copy_t (row (Benchmarks.copy ~cfg ~users ()));
      Text_table.add_row remove_t (row (Benchmarks.remove ~cfg ~users ())))
    Fs.all_schemes;
  Text_table.print copy_t;
  print_newline ();
  Text_table.print remove_t;
  print_endline
    "Expected shape (paper, tables 1-2): the scheduler-based schemes beat\n\
     Conventional; Soft Updates tracks No Order within a few percent and\n\
     cuts remove disk traffic by an order of magnitude."
