(* Quickstart: build a simulated machine, mount a file system with
   soft updates, use it like a normal FS, and verify the on-disk image.

   Run with: dune exec examples/quickstart.exe *)

open Su_sim
open Su_fs

let () =
  (* a 64 MB disk is plenty for a demo *)
  let cfg =
    { (Fs.config ~scheme:Fs.Soft_updates ()) with Fs.geom = Su_fstypes.Geom.small }
  in
  let w = Fs.make cfg in
  let st = w.Fs.st in

  (* everything happens inside simulated processes *)
  let _user =
    Proc.spawn w.Fs.engine ~name:"user" (fun () ->
        Fsops.mkdir st "/projects";
        Fsops.mkdir st "/projects/paper";
        Fsops.create st "/projects/paper/draft.tex";
        Fsops.append st "/projects/paper/draft.tex" ~bytes:24_000;
        Fsops.create st "/projects/paper/refs.bib";
        Fsops.append st "/projects/paper/refs.bib" ~bytes:3_000;

        (* rename adds the new name before removing the old (rule 1) *)
        Fsops.rename st ~src:"/projects/paper/draft.tex"
          ~dst:"/projects/paper/final.tex";

        let s = Fsops.stat st "/projects/paper/final.tex" in
        Printf.printf "final.tex: %d bytes, %d link(s)\n" s.Fsops.st_size
          s.Fsops.st_nlink;
        Printf.printf "directory: %s\n"
          (String.concat ", " (Fsops.readdir st "/projects/paper"));

        (* create + remove with soft updates costs no disk writes *)
        Fsops.create st "/projects/paper/scratch.tmp";
        Fsops.unlink st "/projects/paper/scratch.tmp";

        Fsops.sync st;
        Fs.stop w)
  in
  Engine.run w.Fs.engine;

  (* inspect what actually reached the disk *)
  let report =
    Fsck.check ~geom:cfg.Fs.geom
      ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
      ~check_exposure:true
  in
  Printf.printf "fsck: %s (%d files, %d dirs)\n"
    (if Fsck.ok report then "clean" else "VIOLATIONS")
    report.Fsck.files report.Fsck.dirs;
  (match w.Fs.st.State.softdep_stats with
   | Some s ->
     Printf.printf
       "soft updates: %d dependency records, %d rollbacks, %d cancelled \
        create+remove pairs\n"
       s.Su_core.Softdep.created s.Su_core.Softdep.rollbacks
       s.Su_core.Softdep.cancelled_adds
   | None -> ());
  Printf.printf "disk requests: %d, simulated time: %.2fs\n"
    (Su_disk.Disk.requests_serviced w.Fs.disk)
    (Engine.now w.Fs.engine)
