examples/recovery_tour.ml: Crash Engine Format Fs Fsck Fsops List Printf Proc Su_fs Su_fstypes Su_sim
