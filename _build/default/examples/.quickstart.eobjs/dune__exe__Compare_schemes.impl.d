examples/compare_schemes.ml: Benchmarks Fs List Printf Runner Su_fs Su_util Su_workload Text_table
