examples/crash_consistency.ml: Crash Format Fs Fsck Fsops List Printf Proc Rng Su_fs Su_fstypes Su_sim Su_util Text_table
