examples/trace_explorer.ml: Engine Fs Fsops List Printf Proc State Su_driver Su_fs Su_fstypes Su_sim
