examples/quickstart.mli:
