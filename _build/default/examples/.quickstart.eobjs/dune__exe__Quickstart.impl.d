examples/quickstart.ml: Engine Fs Fsck Fsops Printf Proc State String Su_core Su_disk Su_fs Su_fstypes Su_sim
