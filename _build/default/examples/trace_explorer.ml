(* Trace explorer: watch how the same burst of file creations turns
   into disk requests under three disciplines. Conventional emits a
   synchronous write per metadata update; the scheduler-flag scheme
   emits flagged asynchronous writes; soft updates coalesces nearly
   everything into a few delayed writes.

   Run with: dune exec examples/trace_explorer.exe *)

open Su_sim
open Su_fs

let burst st =
  Fsops.mkdir st "/d";
  for i = 1 to 8 do
    let p = Printf.sprintf "/d/f%d" i in
    Fsops.create st p;
    Fsops.append st p ~bytes:2048
  done;
  (* wait so the syncer's delayed writes appear in the trace too *)
  Proc.sleep st.State.engine 40.0

let show scheme =
  let cfg =
    { (Fs.config ~scheme ()) with
      Fs.geom = Su_fstypes.Geom.small;
      keep_trace_records = true }
  in
  let w = Fs.make cfg in
  ignore
    (Proc.spawn w.Fs.engine ~name:"user" (fun () ->
         burst w.Fs.st;
         Fs.stop w));
  Engine.run w.Fs.engine;
  let records = Su_driver.Trace.records (Su_driver.Driver.trace w.Fs.driver) in
  Printf.printf "--- %s: %d disk requests for mkdir + 8 x (create+write)\n"
    (Fs.scheme_kind_name scheme) (List.length records);
  Printf.printf "%8s  %-5s %8s %5s %10s %9s\n" "t(s)" "kind" "lbn" "nfrag"
    "queue(ms)" "svc(ms)";
  List.iter
    (fun (r : Su_driver.Trace.record) ->
      Printf.printf "%8.3f  %-5s %8d %5d %10.2f %9.2f\n"
        r.Su_driver.Trace.r_issue
        (match r.Su_driver.Trace.r_kind with
         | Su_driver.Request.Read -> "read"
         | Su_driver.Request.Write -> "write")
        r.Su_driver.Trace.r_lbn r.Su_driver.Trace.r_nfrags
        (1000.0 *. (r.Su_driver.Trace.r_start -. r.Su_driver.Trace.r_issue))
        (1000.0 *. (r.Su_driver.Trace.r_complete -. r.Su_driver.Trace.r_start)))
    records;
  print_newline ()

let () =
  List.iter show
    [ Fs.Conventional; Fs.Scheduler_flag; Fs.Soft_updates ]
