(* Crash-consistency demo: run the same metadata-heavy workload under
   every ordering scheme, pull the plug mid-flight, and fsck what is
   left on the platters. The unsafe No Order baseline shows integrity
   violations; every other scheme leaves only repairable debris.

   Run with: dune exec examples/crash_consistency.exe *)

open Su_sim
open Su_fs
open Su_util

let workload st rng () =
  Fsops.mkdir st "/work";
  let live = ref [] in
  for i = 1 to 250 do
    match Rng.int rng 6 with
    | 0 | 1 | 2 ->
      let p = Printf.sprintf "/work/f%d" i in
      Fsops.create st p;
      Fsops.append st p ~bytes:(1024 * Rng.int_range rng 1 8);
      live := p :: !live
    | 3 ->
      (match !live with
       | p :: rest ->
         Fsops.unlink st p;
         live := rest
       | [] -> ())
    | 4 ->
      let d = Printf.sprintf "/work/d%d" i in
      Fsops.mkdir st d;
      Fsops.create st (d ^ "/inner")
    | _ -> (
      match !live with p :: _ -> ignore (Fsops.read_file st p) | [] -> ())
  done

let () =
  let crash_time = 6.0 in
  Printf.printf
    "Crashing the same workload at t=%.1fs under each scheme:\n\n" crash_time;
  let t =
    Text_table.create ~title:"fsck after the crash"
      ~headers:
        [ "scheme"; "violations"; "files"; "leaked frags"; "leaked inodes"; "verdict" ]
  in
  List.iter
    (fun scheme ->
      let cfg =
        { (Fs.config ~scheme ()) with Fs.geom = Su_fstypes.Geom.small; cache_mb = 8 }
      in
      let w = Fs.make cfg in
      ignore
        (Proc.spawn w.Fs.engine ~name:"worker"
           (workload w.Fs.st (Rng.create 42)));
      (* journaled schemes replay their log inside crash_and_check *)
      let r = Crash.crash_and_check w crash_time in
      Text_table.add_row t
        [
          Fs.scheme_kind_name scheme;
          string_of_int (List.length r.Fsck.violations);
          string_of_int r.Fsck.files;
          string_of_int r.Fsck.leaked_frags;
          string_of_int r.Fsck.leaked_inodes;
          (if Fsck.ok r then "consistent" else "INTEGRITY LOST");
        ];
      if not (Fsck.ok r) then begin
        Printf.printf "%s violations:\n" (Fs.scheme_kind_name scheme);
        List.iter
          (fun v -> Format.printf "  - %a@." Fsck.pp_violation v)
          r.Fsck.violations;
        print_newline ()
      end)
    (Fs.all_schemes
    @ [ Fs.Journaled { group_commit = false };
        Fs.Journaled { group_commit = true } ]);
  Text_table.print t;
  print_endline
    "Leaked resources and stale free maps are repaired by fsck; dangling\n\
     entries, cross-allocated blocks and undercounted links are not — that\n\
     is the integrity the update ordering buys."
