(* Benchmark harness: regenerates every figure and table of the
   paper's evaluation (section 5 plus the section 3 comparisons).

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- --quick      # reduced workloads
     dune exec bench/main.exe -- fig5 tab2    # selected experiments
     dune exec bench/main.exe -- --micro      # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --hotpaths [--json BENCH_hotpaths.json]
                                              # dispatch/eviction hot paths
     dune exec bench/main.exe -- --list       # available ids *)

let available =
  [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "tab1"; "tab2"; "tab3"; "fig6";
    "chains-dealloc"; "chains-cb"; "crash"; "soft-ablate"; "journal"; "nvram"; "aging" ]

(* --- Bechamel micro-benchmarks of the core data structures ------------- *)

let micro () =
  let open Bechamel in
  let heap_bench =
    Test.make ~name:"heap push/pop x1000"
      (Staged.stage (fun () ->
           let h = Su_util.Heap.create ~cmp:compare in
           for i = 0 to 999 do
             Su_util.Heap.push h ((i * 7919) mod 1000)
           done;
           while not (Su_util.Heap.is_empty h) do
             ignore (Su_util.Heap.pop h)
           done))
  in
  let engine_bench =
    Test.make ~name:"engine 1000 events"
      (Staged.stage (fun () ->
           let e = Su_sim.Engine.create () in
           for i = 1 to 1000 do
             Su_sim.Engine.at e (float_of_int i *. 0.001) (fun () -> ())
           done;
           Su_sim.Engine.run e))
  in
  let proc_bench =
    Test.make ~name:"spawn/join 100 processes"
      (Staged.stage (fun () ->
           let e = Su_sim.Engine.create () in
           for _ = 1 to 100 do
             ignore (Su_sim.Proc.spawn e (fun () -> Su_sim.Proc.sleep e 0.01))
           done;
           Su_sim.Engine.run e))
  in
  let seek_bench =
    Test.make ~name:"seek curve x10000"
      (Staged.stage (fun () ->
           let p = Su_disk.Disk_params.hp_c2447 in
           for d = 0 to 9999 do
             ignore (Su_disk.Disk_params.seek_time p (d mod 2000))
           done))
  in
  let rng_bench =
    Test.make ~name:"rng 10000 draws"
      (Staged.stage (fun () ->
           let r = Su_util.Rng.create 1 in
           for _ = 1 to 10_000 do
             ignore (Su_util.Rng.int r 1000)
           done))
  in
  let tests =
    Test.make_grouped ~name:"core"
      [ heap_bench; engine_bench; proc_bench; seek_bench; rng_bench ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances tests
  in
  let results = benchmark () in
  (* Bechamel's analysis: ordinary least squares against run count *)
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock results
  in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results

(* --- hot-path micro-benchmarks ----------------------------------------- *)

(* Stress the two structures the paper's burst scenarios lean on: the
   driver dispatch queue under thousands of simultaneously pending
   requests (No Order / Soft Updates delayed-write bursts) and the
   buffer-cache eviction path. Results go to BENCH_hotpaths.json so
   the perf trajectory is tracked across PRs. *)

let hotpath_scale quick = if quick then 2_000 else 10_000

let mk_disk_driver ~mode ~policy =
  let e = Su_sim.Engine.create () in
  let d =
    Su_disk.Disk.create ~engine:e ~params:Su_disk.Disk_params.hp_c2447
      ~nfrags:(1 lsl 20) ()
  in
  let drv =
    Su_driver.Driver.create ~engine:e ~disk:d
      { Su_driver.Driver.default_config with mode; policy }
  in
  (e, drv)

let wpayload n = Array.make n Su_fstypes.Types.Empty

(* [n] writes queued up-front at pseudo-random positions: every disk
   completion must pick the next request from an [n]-deep queue. *)
let bench_driver_burst ~mode ?(policy = Su_driver.Driver.Clook)
    ?(flag_every = 0) ?(read_every = 0) ?(chain = false) n () =
  let e, drv = mk_disk_driver ~mode ~policy in
  let rng = Su_util.Rng.create 42 in
  let done_ = ref 0 in
  let prev = ref None in
  for i = 1 to n do
    let lbn = 64 + (Su_util.Rng.int rng 65_000 * 8) in
    let kind =
      if read_every > 0 && i mod read_every = 0 then Su_driver.Request.Read
      else Su_driver.Request.Write
    in
    let flagged = flag_every > 0 && i mod flag_every = 0 in
    let deps = if chain then match !prev with Some p -> [ p ] | None -> [] else [] in
    let id =
      Su_driver.Driver.submit drv ~kind ~lbn ~nfrags:1 ~flagged ~deps
        ?payload:(if kind = Su_driver.Request.Write then Some (wpayload 1) else None)
        ~on_complete:(fun _ -> incr done_)
        ()
    in
    if kind = Su_driver.Request.Write then prev := Some id
  done;
  Su_sim.Engine.run e;
  assert (!done_ = n);
  n

(* [n] buffer allocations through a small cache: every allocation past
   capacity must select and evict the LRU clean victim. *)
let bench_cache_evict n () =
  let e, drv = mk_disk_driver ~mode:Su_driver.Ordering.Unordered
      ~policy:Su_driver.Driver.Clook in
  let bc =
    Su_cache.Bcache.create ~engine:e ~driver:drv
      { Su_cache.Bcache.default_config with capacity_frags = n / 2 }
  in
  ignore
    (Su_sim.Proc.spawn e (fun () ->
         for i = 0 to n - 1 do
           let b =
             Su_cache.Bcache.getblk bc ~lbn:(i * 2) ~nfrags:1 ~init:(fun () ->
                 Su_cache.Buf.Cdata [| Some Su_fstypes.Types.Zeroed |])
           in
           Su_cache.Bcache.release bc b
         done));
  Su_sim.Engine.run e;
  n

(* Dirty [n] buffers, then flush them all: sync_all walks the dirty
   set and the driver drains an [n]-deep unordered write burst. *)
let bench_cache_sync_all n () =
  let e, drv = mk_disk_driver ~mode:Su_driver.Ordering.Unordered
      ~policy:Su_driver.Driver.Clook in
  let bc =
    Su_cache.Bcache.create ~engine:e ~driver:drv
      { Su_cache.Bcache.default_config with capacity_frags = 2 * n }
  in
  ignore
    (Su_sim.Proc.spawn e (fun () ->
         for i = 0 to n - 1 do
           let b =
             Su_cache.Bcache.getblk bc ~lbn:(i * 2) ~nfrags:1 ~init:(fun () ->
                 Su_cache.Buf.Cdata [| Some Su_fstypes.Types.Zeroed |])
           in
           Su_cache.Bcache.bdwrite bc b;
           Su_cache.Bcache.release bc b
         done;
         Su_cache.Bcache.sync_all bc));
  Su_sim.Engine.run e;
  n

let hotpath_benches n =
  [
    ( "driver-burst-unordered-clook",
      bench_driver_burst ~mode:Su_driver.Ordering.Unordered n );
    ( "driver-burst-unordered-fcfs",
      bench_driver_burst ~mode:Su_driver.Ordering.Unordered
        ~policy:Su_driver.Driver.Fcfs n );
    ( "driver-burst-part-nr",
      bench_driver_burst
        ~mode:(Su_driver.Ordering.Flag { sem = Su_driver.Ordering.Part; nr = true })
        ~flag_every:16 ~read_every:8 n );
    ( "driver-burst-chains",
      bench_driver_burst
        ~mode:(Su_driver.Ordering.Chains { nr = true })
        ~chain:true n );
    ("cache-evict-clean", bench_cache_evict n);
    ("cache-sync-all", bench_cache_sync_all n);
  ]

let run_hotpaths ~quick ~json_path =
  let n = hotpath_scale quick in
  let results =
    List.map
      (fun (name, f) ->
        let t0 = Unix.gettimeofday () in
        let events = f () in
        let wall = Unix.gettimeofday () -. t0 in
        let eps = if wall > 0.0 then float_of_int events /. wall else 0.0 in
        Printf.printf "%-30s n=%-6d %8.3fs wall %12.0f events/s\n%!" name
          events wall eps;
        (name, events, wall, eps))
      (hotpath_benches n)
  in
  match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"scale\": \"%s\",\n  \"requests\": %d,\n"
      (if quick then "quick" else "full")
      n;
    Printf.fprintf oc "  \"results\": [\n";
    List.iteri
      (fun i (name, events, wall, eps) ->
        Printf.fprintf oc
          "    {\"name\": %S, \"events\": %d, \"wall_s\": %.4f, \
           \"events_per_sec\": %.1f}%s\n"
          name events wall eps
          (if i = List.length results - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "# wrote %s\n" path

(* --- main --------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro" args in
  if List.mem "--list" args then begin
    List.iter print_endline available;
    exit 0
  end;
  if micro_only then begin
    micro ();
    exit 0
  end;
  if List.mem "--hotpaths" args then begin
    let rec json_of = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> json_of rest
      | [] -> None
    in
    run_hotpaths ~quick ~json_path:(json_of args);
    exit 0
  end;
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let scale = if quick then `Quick else `Full in
  let wanted = if selected = [] then available else selected in
  let t_start = Unix.gettimeofday () in
  Printf.printf
    "# Metadata Update Performance in File Systems (Ganger & Patt, OSDI 94)\n";
  Printf.printf "# simulated reproduction - %s scale\n\n"
    (if quick then "quick" else "full");
  List.iter
    (fun id ->
      match List.assoc_opt id (Su_experiments.Experiments.all scale) with
      | None -> Printf.eprintf "unknown experiment %S (try --list)\n" id
      | Some thunk ->
        let t0 = Unix.gettimeofday () in
        List.iter Su_util.Text_table.print (thunk ());
        Printf.printf "[%s took %.1fs wall]\n\n%!" id (Unix.gettimeofday () -. t0))
    wanted;
  Printf.printf "# total wall time: %.1fs\n" (Unix.gettimeofday () -. t_start)
