(* Benchmark harness: regenerates every figure and table of the
   paper's evaluation (section 5 plus the section 3 comparisons).

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- --quick      # reduced workloads
     dune exec bench/main.exe -- fig5 tab2    # selected experiments
     dune exec bench/main.exe -- --jobs 4     # figure runs over 4 domains
     dune exec bench/main.exe -- --micro      # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --hotpaths [--json BENCH_hotpaths.json]
                                              # dispatch/eviction hot paths
     dune exec bench/main.exe -- --crashsweep [--json BENCH_crashsweep.json]
                                              # delta snapshots + work pool
     dune exec bench/main.exe -- --loadgen [--json BENCH_loadgen.json]
                                              # load engine + dir-scale gates
     dune exec bench/main.exe -- --corrupt [--json BENCH_corrupt.json]
                                              # checksum overhead + gates
     dune exec bench/main.exe -- --list       # available ids *)

let available =
  [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "tab1"; "tab2"; "tab3"; "fig6";
    "chains-dealloc"; "chains-cb"; "crash"; "soft-ablate"; "journal"; "nvram"; "aging" ]

let usage () =
  print_string
    "usage: main.exe [options] [experiment ids]\n\
     \n\
     With no ids, every experiment runs in paper order.\n\
     \n\
     options:\n\
     \  --quick         reduced workload sizes (smoke scale)\n\
     \  --jobs N        worker domains for figure runs and --crashsweep\n\
     \                  (default 1 = serial; 0 = one per core); results\n\
     \                  and output are byte-identical at any value\n\
     \  --list          print available experiment ids\n\
     \  --micro         Bechamel micro-benchmarks of the core structures\n\
     \  --hotpaths      driver-dispatch / cache-eviction hot paths\n\
     \  --min-driver-eps N\n\
     \                  with --hotpaths: exit 1 if any driver-burst-*\n\
     \                  benchmark falls below N events/sec (a generous\n\
     \                  anti-regression floor for CI, not a target)\n\
     \  --crashsweep    crash-state materialization (delta log vs deep\n\
     \                  copy) and full-sweep scaling across the pool\n\
     \  --loadgen       load-engine steady state (zero-major assertion)\n\
     \                  and directory-scale lookups (10k entries gated\n\
     \                  within 2x of 100); exit 1 on a failed gate\n\
     \  --corrupt       checksum overhead: driver burst and loadgen\n\
     \                  steady loops with the digest region off vs on;\n\
     \                  gates: checksummed steady loop still runs zero\n\
     \                  major collections, burst overhead within 2x\n\
     \  --volume        compact volume image: mkfs at 1M-inode scale\n\
     \                  (minor words/inode gate), resident bytes/inode\n\
     \                  gate, and the load engine on the big volume\n\
     \  --json PATH     write results JSON: experiment tables (the\n\
     \                  document EXPERIMENTS.md specifies), or the\n\
     \                  --hotpaths/--crashsweep perf records\n\
     \  --assert-shapes PATH\n\
     \                  parse an experiments JSON written by --json and\n\
     \                  check the calibrated shape claims (exit 1 on any\n\
     \                  failure); runs no experiments itself\n\
     \  --help          this text\n"

(* --- Bechamel micro-benchmarks of the core data structures ------------- *)

let micro () =
  let open Bechamel in
  let heap_bench =
    Test.make ~name:"heap push/pop x1000"
      (Staged.stage (fun () ->
           let h = Su_util.Heap.create ~cmp:compare in
           for i = 0 to 999 do
             Su_util.Heap.push h ((i * 7919) mod 1000)
           done;
           while not (Su_util.Heap.is_empty h) do
             ignore (Su_util.Heap.pop h)
           done))
  in
  let engine_bench =
    Test.make ~name:"engine 1000 events"
      (Staged.stage (fun () ->
           let e = Su_sim.Engine.create () in
           for i = 1 to 1000 do
             Su_sim.Engine.at e (float_of_int i *. 0.001) (fun () -> ())
           done;
           Su_sim.Engine.run e))
  in
  let proc_bench =
    Test.make ~name:"spawn/join 100 processes"
      (Staged.stage (fun () ->
           let e = Su_sim.Engine.create () in
           for _ = 1 to 100 do
             ignore (Su_sim.Proc.spawn e (fun () -> Su_sim.Proc.sleep e 0.01))
           done;
           Su_sim.Engine.run e))
  in
  let seek_bench =
    Test.make ~name:"seek curve x10000"
      (Staged.stage (fun () ->
           let p = Su_disk.Disk_params.hp_c2447 in
           for d = 0 to 9999 do
             ignore (Su_disk.Disk_params.seek_time p (d mod 2000))
           done))
  in
  let rng_bench =
    Test.make ~name:"rng 10000 draws"
      (Staged.stage (fun () ->
           let r = Su_util.Rng.create 1 in
           for _ = 1 to 10_000 do
             ignore (Su_util.Rng.int r 1000)
           done))
  in
  let tests =
    Test.make_grouped ~name:"core"
      [ heap_bench; engine_bench; proc_bench; seek_bench; rng_bench ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances tests
  in
  let results = benchmark () in
  (* Bechamel's analysis: ordinary least squares against run count *)
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock results
  in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results

(* --- hot-path micro-benchmarks ----------------------------------------- *)

(* Stress the two structures the paper's burst scenarios lean on: the
   driver dispatch queue under thousands of simultaneously pending
   requests (No Order / Soft Updates delayed-write bursts) and the
   buffer-cache eviction path. Results go to BENCH_hotpaths.json so
   the perf trajectory is tracked across PRs. *)

let hotpath_scale quick = if quick then 2_000 else 10_000

let mk_disk_driver ?(checksums = false) ~mode ~policy () =
  let e = Su_sim.Engine.create () in
  let d =
    Su_disk.Disk.create ~engine:e ~params:Su_disk.Disk_params.hp_c2447
      ~nfrags:(1 lsl 20) ~checksums ()
  in
  let drv =
    Su_driver.Driver.create ~engine:e ~disk:d
      { Su_driver.Driver.default_config with mode; policy }
  in
  (e, drv)

let wpayload n = Array.make n Su_fstypes.Types.Empty

(* [n] writes queued up-front at pseudo-random positions: every disk
   completion must pick the next request from an [n]-deep queue.

   Each hotpath bench is staged: calling it builds the world (engine,
   disk image, driver, cache) and returns the run thunk, so the timed
   region covers only the submit + drain hot paths — not the one-off
   8 MB disk-image allocation, which would otherwise be ~10% of the
   wall at current throughput. *)
let bench_driver_burst ~mode ?(policy = Su_driver.Driver.Clook)
    ?(flag_every = 0) ?(read_every = 0) ?(chain = false) ?(checksums = false)
    n () =
  let e, drv = mk_disk_driver ~checksums ~mode ~policy () in
  (* Workload generation is prepare work too: the RNG's int64 mixing
     is measurably more expensive than a dispatch-index lookup, and it
     is not the system under test. *)
  let rng = Su_util.Rng.create 42 in
  let lbns = Array.make n 0 in
  for i = 0 to n - 1 do
    lbns.(i) <- 64 + (Su_util.Rng.int rng 65_000 * 8)
  done;
  let payload = Some (wpayload 1) in
  fun () ->
  let done_ = ref 0 in
  let on_complete _ = incr done_ in
  let prev = ref (-1) in
  for i = 1 to n do
    let lbn = lbns.(i - 1) in
    let kind =
      if read_every > 0 && i mod read_every = 0 then Su_driver.Request.Read
      else Su_driver.Request.Write
    in
    let flagged = flag_every > 0 && i mod flag_every = 0 in
    let deps = if chain && !prev >= 0 then [ !prev ] else [] in
    let is_write =
      match kind with Su_driver.Request.Write -> true | Su_driver.Request.Read -> false
    in
    let id =
      Su_driver.Driver.submit drv ~kind ~lbn ~nfrags:1 ~flagged ~deps
        ?payload:(if is_write then payload else None)
        ~on_complete ()
    in
    if is_write then prev := id
  done;
  (* BENCH_ALLOC_PROBE=1 isolates the drain phase — the steady-state
     event loop with no submissions — and prints its minor-heap words
     and microseconds per request to stderr. This is the number behind
     the "near-zero allocation per event" budget in HACKING.md. *)
  (if Sys.getenv_opt "BENCH_ALLOC_PROBE" <> None then begin
     let w0 = Gc.minor_words () in
     let t0 = Unix.gettimeofday () in
     Su_sim.Engine.run e;
     let dt = Unix.gettimeofday () -. t0 in
     let w1 = Gc.minor_words () in
     Printf.eprintf "drain: %.1f words/req, %.2f us/req (%d events executed)\n%!"
       ((w1 -. w0) /. float_of_int n)
       (dt /. float_of_int n *. 1e6)
       (Su_sim.Engine.events_executed e)
   end
   else Su_sim.Engine.run e);
  assert (!done_ = n);
  n

(* [n] buffer allocations through a small cache: every allocation past
   capacity must select and evict the LRU clean victim. *)
let bench_cache_evict n () =
  let e, drv = mk_disk_driver ~mode:Su_driver.Ordering.Unordered
      ~policy:Su_driver.Driver.Clook () in
  let bc =
    Su_cache.Bcache.create ~engine:e ~driver:drv
      { Su_cache.Bcache.default_config with capacity_frags = n / 2 }
  in
  fun () ->
  ignore
    (Su_sim.Proc.spawn e (fun () ->
         for i = 0 to n - 1 do
           let b =
             Su_cache.Bcache.getblk bc ~lbn:(i * 2) ~nfrags:1 ~init:(fun () ->
                 Su_cache.Buf.Cdata [| Some Su_fstypes.Types.Zeroed |])
           in
           Su_cache.Bcache.release bc b
         done));
  Su_sim.Engine.run e;
  n

(* Dirty [n] buffers, then flush them all: sync_all walks the dirty
   set and the driver drains an [n]-deep unordered write burst. *)
let bench_cache_sync_all n () =
  let e, drv = mk_disk_driver ~mode:Su_driver.Ordering.Unordered
      ~policy:Su_driver.Driver.Clook () in
  let bc =
    Su_cache.Bcache.create ~engine:e ~driver:drv
      { Su_cache.Bcache.default_config with capacity_frags = 2 * n }
  in
  fun () ->
  ignore
    (Su_sim.Proc.spawn e (fun () ->
         for i = 0 to n - 1 do
           let b =
             Su_cache.Bcache.getblk bc ~lbn:(i * 2) ~nfrags:1 ~init:(fun () ->
                 Su_cache.Buf.Cdata [| Some Su_fstypes.Types.Zeroed |])
           in
           Su_cache.Bcache.bdwrite bc b;
           Su_cache.Bcache.release bc b
         done;
         Su_cache.Bcache.sync_all bc));
  Su_sim.Engine.run e;
  n

let hotpath_benches n =
  [
    ( "driver-burst-unordered-clook",
      bench_driver_burst ~mode:Su_driver.Ordering.Unordered n );
    ( "driver-burst-unordered-fcfs",
      bench_driver_burst ~mode:Su_driver.Ordering.Unordered
        ~policy:Su_driver.Driver.Fcfs n );
    ( "driver-burst-part-nr",
      bench_driver_burst
        ~mode:(Su_driver.Ordering.Flag { sem = Su_driver.Ordering.Part; nr = true })
        ~flag_every:16 ~read_every:8 n );
    ( "driver-burst-chains",
      bench_driver_burst
        ~mode:(Su_driver.Ordering.Chains { nr = true })
        ~chain:true n );
    ("cache-evict-clean", bench_cache_evict n);
    ("cache-sync-all", bench_cache_sync_all n);
  ]

(* Each benchmark runs bracketed by [Gc.quick_stat] so the zero-alloc
   claim on the event core is a measured number: minor-heap words per
   event and major collections, persisted alongside the throughput. *)
let run_hotpaths ~quick ~jobs ~json_path ~min_driver_eps =
  let n = hotpath_scale quick in
  let benches = Array.of_list (hotpath_benches n) in
  (* Fan independent benchmark worlds across the pool; results are
     merged (and printed) by index, so names/events are byte-identical
     at any --jobs value — only the timings vary.

     Each bench runs [reps] times in a fresh world and the fastest rep
     is recorded: per-run wall times of 10-30 ms are at the mercy of
     scheduler noise, and the minimum is the standard stable estimate
     of what the code itself costs. Allocation counts are per-rep
     deterministic, so they come from the same (fastest) rep. *)
  let reps = if quick then 2 else 7 in
  let results =
    Su_util.Pool.map ~jobs (Array.length benches) (fun i ->
        let name, bench = benches.(i) in
        let best = ref None in
        for _ = 1 to reps do
          let run = bench () in
          Gc.full_major ();
          let s0 = Gc.quick_stat () in
          let t0 = Unix.gettimeofday () in
          let events = run () in
          let wall = Unix.gettimeofday () -. t0 in
          let s1 = Gc.quick_stat () in
          let eps = if wall > 0.0 then float_of_int events /. wall else 0.0 in
          let words_per_event =
            (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int events
          in
          let majors = s1.Gc.major_collections - s0.Gc.major_collections in
          match !best with
          | Some (_, _, best_wall, _, _, _) when best_wall <= wall -> ()
          | _ -> best := Some (name, events, wall, eps, words_per_event, majors)
        done;
        match !best with
        | Some r -> r
        | None -> (name, 0, 0.0, 0.0, 0.0, 0))
  in
  Array.iter
    (fun (name, events, wall, eps, wpe, majors) ->
      Printf.printf
        "%-30s n=%-6d %8.3fs wall %12.0f events/s %9.1f mwords/ev %3d majors\n%!"
        name events wall eps wpe majors)
    results;
  (match json_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Printf.fprintf oc "{\n  \"scale\": \"%s\",\n  \"requests\": %d,\n"
       (if quick then "quick" else "full")
       n;
     Printf.fprintf oc "  \"results\": [\n";
     Array.iteri
       (fun i (name, events, wall, eps, wpe, majors) ->
         Printf.fprintf oc
           "    {\"name\": %S, \"events\": %d, \"wall_s\": %.4f, \
            \"events_per_sec\": %.1f, \"minor_words_per_event\": %.1f, \
            \"major_collections\": %d}%s\n"
           name events wall eps wpe majors
           (if i = Array.length results - 1 then "" else ","))
       results;
     Printf.fprintf oc "  ]\n}\n";
     close_out oc;
     Printf.printf "# wrote %s\n" path);
  match min_driver_eps with
  | None -> ()
  | Some floor ->
    let failed = ref false in
    Array.iter
      (fun (name, _, _, eps, _, _) ->
        if
          String.length name >= 12
          && String.sub name 0 12 = "driver-burst"
          && eps < floor
        then begin
          failed := true;
          Printf.eprintf "FAIL: %s at %.0f events/s is below the %.0f floor\n"
            name eps floor
        end)
      results;
    if !failed then exit 1

(* --- crash-state materialization + sweep scaling ----------------------- *)

(* Two measurements per built-in workload, written to
   BENCH_crashsweep.json so the perf trajectory is tracked across PRs:

   1. materialization throughput: producing the durable image at every
      crash state (each write boundary + every torn prefix), comparing
      the pre-delta approach — a full [Array.map Types.copy_cell] deep
      copy per state — against the write-delta log, which seeks one
      reusable base image in O(cells touched) per step. This isolates
      exactly the cost the delta log removes.

   2. full-sweep wall clock: Explorer.sweep (fsck + repair + remount +
      continuation per state) at --jobs 1 and --jobs N, states/sec
      each, pinning the work pool's scaling. *)

module Explorer = Su_check.Explorer
module Delta = Su_check.Delta

let crashsweep_cfg =
  {
    (Su_fs.Fs.config ~scheme:Su_fs.Fs.Soft_updates ()) with
    Su_fs.Fs.geom = Su_fstypes.Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
    cache_mb = 4;
    journal_mb = 2;
  }

(* The pre-delta materialization: advance a private base incrementally,
   then take a full deep-copy snapshot per state (plus the torn-prefix
   overlay), exactly as the seed explorer did. *)
let materialize_deepcopy (r : Explorer.recording) states =
  let open Su_fstypes in
  let cur = Array.map Types.copy_cell r.Explorer.rec_initial in
  let pos = ref 0 in
  let live = ref 0 in
  Array.iter
    (fun (k, torn) ->
      while !pos < k do
        let d = r.Explorer.rec_deltas.(!pos) in
        Array.iteri
          (fun i c -> cur.(d.Delta.d_lbn + i) <- Types.copy_cell c)
          d.Delta.d_post;
        incr pos
      done;
      let img = Array.map Types.copy_cell cur in
      (match torn with
       | Some applied ->
         let d = r.Explorer.rec_deltas.(k) in
         for i = 0 to applied - 1 do
           img.(d.Delta.d_lbn + i) <- Types.copy_cell d.Delta.d_post.(i)
         done
       | None -> ());
      ignore (Sys.opaque_identity img);
      incr live)
    states;
  !live

(* The delta-log materialization: one reusable base, O(cells touched)
   per seek; torn prefixes are applied and immediately undone. *)
let materialize_delta (r : Explorer.recording) states =
  let cur = Delta.cursor ~initial:r.Explorer.rec_initial ~log:r.Explorer.rec_deltas in
  let base = Delta.image cur in
  let live = ref 0 in
  Array.iter
    (fun (k, torn) ->
      Delta.seek cur k;
      (match torn with
       | Some applied ->
         let d = (Delta.log cur).(k) in
         Array.blit d.Delta.d_post 0 base d.Delta.d_lbn applied;
         (* the state is live here; restore boundary [k] for the next seek *)
         Array.blit d.Delta.d_pre 0 base d.Delta.d_lbn applied
       | None -> ());
      ignore (Sys.opaque_identity base);
      incr live)
    states;
  !live

(* Repeat [f] over the state list until ~0.25s of wall clock has
   accumulated, so per-state times in the nanosecond range still
   measure cleanly. *)
let time_states f states =
  let t0 = Unix.gettimeofday () in
  let total = ref 0 in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.25 || !reps = 0 do
    total := !total + f states;
    incr reps
  done;
  let wall = Unix.gettimeofday () -. t0 in
  float_of_int !total /. wall

let run_crashsweep ~quick ~jobs ~json_path =
  let jobs_n = Su_util.Pool.resolve_jobs jobs in
  let max_boundaries = if quick then Some 30 else None in
  let results =
    List.map
      (fun wl ->
        let r = Explorer.record ~cfg:crashsweep_cfg wl in
        let states = Explorer.crash_states ?max_boundaries r in
        let deep_sps = time_states (materialize_deepcopy r) states in
        let delta_sps = time_states (materialize_delta r) states in
        let sweep_at jobs =
          let t0 = Unix.gettimeofday () in
          let s =
            Explorer.sweep_recording ~jobs ?max_boundaries ~cfg:crashsweep_cfg
              ~workload:wl.Explorer.wl_name r
          in
          let wall = Unix.gettimeofday () -. t0 in
          (s, wall, float_of_int s.Explorer.s_states /. wall)
        in
        let s1, wall1, sps1 = sweep_at 1 in
        let _sn, walln, spsn = sweep_at jobs_n in
        Printf.printf
          "%-12s states=%-5d materialize: deepcopy %10.0f/s  delta %12.0f/s \
           (%5.1fx)\n"
          wl.Explorer.wl_name (Array.length states) deep_sps delta_sps
          (delta_sps /. deep_sps);
        Printf.printf
          "%-12s sweep: jobs=1 %6.2fs (%5.1f states/s)   jobs=%d %6.2fs \
           (%5.1f states/s)\n%!"
          "" wall1 sps1 jobs_n walln spsn;
        (wl.Explorer.wl_name, s1, Array.length states, deep_sps, delta_sps,
         wall1, sps1, walln, spsn))
      Explorer.builtin_workloads
  in
  match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"scale\": \"%s\",\n  \"jobs\": %d,\n"
      (if quick then "quick" else "full")
      jobs_n;
    Printf.fprintf oc "  \"workloads\": [\n";
    List.iteri
      (fun i (name, s1, states, deep, delta, wall1, sps1, walln, spsn) ->
        Printf.fprintf oc
          "    {\"name\": %S, \"scheme\": %S, \"writes\": %d, \"states\": %d,\n\
          \     \"materialize\": {\"deepcopy_states_per_sec\": %.0f, \
           \"delta_states_per_sec\": %.0f, \"speedup\": %.1f},\n\
          \     \"sweep\": {\"jobs1_wall_s\": %.3f, \"jobs1_states_per_sec\": \
           %.1f, \"jobsN\": %d, \"jobsN_wall_s\": %.3f, \
           \"jobsN_states_per_sec\": %.1f}}%s\n"
          name
          (Su_fs.Fs.scheme_kind_name s1.Explorer.s_scheme)
          s1.Explorer.s_writes states deep delta (delta /. deep) wall1 sps1
          jobs_n walln spsn
          (if i = List.length results - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "# wrote %s\n" path

(* --- loadgen steady state + directory-scale hot paths ------------------ *)

(* Three measured claims, written to BENCH_loadgen.json by --json:

   - loadgen-steady: the open-loop multi-tenant engine at a scale
     whose steady-state loop must complete with ZERO major collections
     (pooled per-client scratch as a measured number, the same way
     --hotpaths pins words/event). Ops/sec is host throughput of the
     whole engine, simulated clients included.

   - dirscale-100 vs dirscale-10k: a fixed count of lookups plus
     create/unlink churn against one directory pre-filled with 100 vs
     10_000 entries, directory index on. The gate: the 10k rate must
     be within 2x of the 100-entry rate — per-op cost no longer scales
     with directory size. dirscale-10k-scan (index off, fewer ops) is
     printed for contrast and not gated. *)

let bench_dirscale ~index ~files nops () =
  let cfg =
    { (Su_fs.Fs.config ~scheme:Su_fs.Fs.Soft_updates ()) with
      Su_fs.Fs.dir_index = index
    }
  in
  let w = Su_fs.Fs.make cfg in
  let st = w.Su_fs.Fs.st in
  let result = ref (0.0, 0.0, 0) in
  let controller () =
    Su_fs.Fsops.mkdir st "/big";
    let names = Array.init files (fun k -> Printf.sprintf "/big/f%06d" k) in
    Array.iter (fun n -> ignore (Su_fs.Fsops.create st n)) names;
    Su_fs.Fsops.sync st;
    Gc.full_major ();
    let s0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    for i = 0 to nops - 1 do
      match i land 3 with
      | 0 | 1 -> ignore (Su_fs.Fsops.stat st names.(i * 7919 mod files))
      | 2 -> ignore (Su_fs.Fsops.create st "/big/xchurn")
      | _ -> Su_fs.Fsops.unlink st "/big/xchurn"
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let s1 = Gc.quick_stat () in
    result :=
      ( wall,
        (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int nops,
        s1.Gc.major_collections - s0.Gc.major_collections );
    Su_fs.Fs.stop w;
    Su_driver.Driver.quiesce w.Su_fs.Fs.driver;
    Su_sim.Engine.stop w.Su_fs.Fs.engine
  in
  ignore (Su_sim.Proc.spawn w.Su_fs.Fs.engine ~name:"dirscale" controller);
  Su_sim.Engine.run w.Su_fs.Fs.engine;
  let wall, wpo, majors = !result in
  (nops, wall, wpo, majors)

let bench_loadgen_steady ?(checksums = false) ~quick () =
  let base = Su_workload.Loadgen.config ~scheme:Su_fs.Fs.Soft_updates () in
  let cfg =
    { base with
      Su_workload.Loadgen.clients = (if quick then 80 else 200);
      rate = 0.5;
      duration = (if quick then 10.0 else 16.0);
      warmup = (if quick then 2.0 else 4.0);
      files_per_client = 6;
      shape = Su_workload.Loadgen.Rampup
    }
  in
  let cfg =
    { cfg with
      Su_workload.Loadgen.fs_cfg =
        { cfg.Su_workload.Loadgen.fs_cfg with Su_fs.Fs.checksums }
    }
  in
  let r = Su_workload.Loadgen.run cfg in
  let ops = r.Su_workload.Loadgen.executed in
  ( ops,
    r.Su_workload.Loadgen.host_wall_s,
    r.Su_workload.Loadgen.minor_words /. float_of_int (max 1 ops),
    r.Su_workload.Loadgen.major_collections )

let run_loadgen ~quick ~json_path =
  let reps = if quick then 2 else 3 in
  let nops = if quick then 800 else 4000 in
  let benches =
    [ ("loadgen-steady", fun () -> bench_loadgen_steady ~quick ());
      ("dirscale-100", bench_dirscale ~index:true ~files:100 nops);
      ("dirscale-10k", bench_dirscale ~index:true ~files:10_000 nops);
      ("dirscale-10k-scan", bench_dirscale ~index:false ~files:10_000 (nops / 8))
    ]
  in
  (* best-of-[reps] per bench, as in --hotpaths: wall times of seconds
     are noisy, the minimum is the stable estimate; GC counts come
     from the same (fastest) rep. *)
  let results =
    List.map
      (fun (name, bench) ->
        let best = ref None in
        for _ = 1 to reps do
          let ops, wall, wpo, majors = bench () in
          let eps = if wall > 0.0 then float_of_int ops /. wall else 0.0 in
          match !best with
          | Some (_, _, best_wall, _, _, _) when best_wall <= wall -> ()
          | _ -> best := Some (name, ops, wall, eps, wpo, majors)
        done;
        match !best with
        | Some r -> r
        | None -> (name, 0, 0.0, 0.0, 0.0, 0))
      benches
  in
  List.iter
    (fun (name, ops, wall, eps, wpo, majors) ->
      Printf.printf
        "%-30s n=%-6d %8.3fs wall %12.0f ops/s %9.1f mwords/op %3d majors\n%!"
        name ops wall eps wpo majors)
    results;
  let eps_of n =
    let (_, _, _, eps, _, _) =
      List.find (fun (name, _, _, _, _, _) -> name = n) results
    in
    eps
  in
  let ratio = eps_of "dirscale-10k" /. eps_of "dirscale-100" in
  Printf.printf "# dirscale-10k / dirscale-100 ops/s ratio %.2f (gate >= 0.5)\n"
    ratio;
  (match json_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Printf.fprintf oc "{\n  \"scale\": \"%s\",\n"
       (if quick then "quick" else "full");
     Printf.fprintf oc "  \"results\": [\n";
     List.iteri
       (fun i (name, ops, wall, eps, wpo, majors) ->
         Printf.fprintf oc
           "    {\"name\": %S, \"ops\": %d, \"wall_s\": %.4f, \
            \"ops_per_sec\": %.1f, \"minor_words_per_op\": %.1f, \
            \"major_collections\": %d}%s\n"
           name ops wall eps wpo majors
           (if i = List.length results - 1 then "" else ","))
       results;
     Printf.fprintf oc "  ],\n  \"dirscale_ratio_10k_vs_100\": %.3f\n}\n" ratio;
     close_out oc;
     Printf.printf "# wrote %s\n" path);
  let failed = ref false in
  let (_, _, _, _, _, steady_majors) =
    List.find (fun (name, _, _, _, _, _) -> name = "loadgen-steady") results
  in
  if steady_majors <> 0 then begin
    failed := true;
    Printf.eprintf
      "FAIL: loadgen-steady ran %d major collections (want 0: the steady \
       loop must not allocate long-lived garbage)\n"
      steady_majors
  end;
  if ratio < 0.5 then begin
    failed := true;
    Printf.eprintf
      "FAIL: dirscale-10k at %.2fx of dirscale-100 is outside the 2x gate\n"
      ratio
  end;
  if !failed then exit 1

(* --- checksum overhead ------------------------------------------------- *)

(* What turning `checksums` on costs on the two loops the perf story
   rests on, written to BENCH_corrupt.json: the driver write burst
   (every acknowledged write now folds its payload into the digest
   region) and the loadgen steady loop (whole-engine ops/sec with a
   checksummed world under every shard). Two gates, exit 1 on either:
   the checksummed steady loop must still run zero major collections —
   digest upkeep is in-place int stores, not allocation — and the
   checksummed burst must stay within 2x of the plain one. *)

let run_corrupt ~quick ~json_path =
  let n = hotpath_scale quick in
  let reps = if quick then 2 else 5 in
  (* staged benches bracket the timed run here (as in --hotpaths);
     loadgen reports its own steady-window measurements *)
  let measure_staged bench =
    let run = bench () in
    Gc.full_major ();
    let s0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let events = run () in
    let wall = Unix.gettimeofday () -. t0 in
    let s1 = Gc.quick_stat () in
    ( events,
      wall,
      (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int events,
      s1.Gc.major_collections - s0.Gc.major_collections )
  in
  let benches =
    [ ( "driver-burst-plain",
        fun () ->
          measure_staged
            (bench_driver_burst ~mode:Su_driver.Ordering.Unordered n) );
      ( "driver-burst-csum",
        fun () ->
          measure_staged
            (bench_driver_burst ~mode:Su_driver.Ordering.Unordered
               ~checksums:true n) );
      ("loadgen-steady-plain", fun () -> bench_loadgen_steady ~quick ());
      ( "loadgen-steady-csum",
        fun () -> bench_loadgen_steady ~checksums:true ~quick () )
    ]
  in
  let results =
    List.map
      (fun (name, bench) ->
        let best = ref None in
        for _ = 1 to reps do
          let ops, wall, wpo, majors = bench () in
          let eps = if wall > 0.0 then float_of_int ops /. wall else 0.0 in
          match !best with
          | Some (_, _, best_wall, _, _, _) when best_wall <= wall -> ()
          | _ -> best := Some (name, ops, wall, eps, wpo, majors)
        done;
        match !best with
        | Some r -> r
        | None -> (name, 0, 0.0, 0.0, 0.0, 0))
      benches
  in
  List.iter
    (fun (name, ops, wall, eps, wpo, majors) ->
      Printf.printf
        "%-30s n=%-6d %8.3fs wall %12.0f ops/s %9.1f mwords/op %3d majors\n%!"
        name ops wall eps wpo majors)
    results;
  let eps_of n =
    let (_, _, _, eps, _, _) =
      List.find (fun (name, _, _, _, _, _) -> name = n) results
    in
    eps
  in
  let overhead plain csum =
    let p = eps_of plain and c = eps_of csum in
    if c > 0.0 then (p /. c -. 1.0) *. 100.0 else infinity
  in
  let burst_pct = overhead "driver-burst-plain" "driver-burst-csum" in
  let steady_pct = overhead "loadgen-steady-plain" "loadgen-steady-csum" in
  Printf.printf "# checksum overhead: driver burst %+.1f%%, steady loop %+.1f%%\n"
    burst_pct steady_pct;
  (match json_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Printf.fprintf oc "{\n  \"scale\": \"%s\",\n"
       (if quick then "quick" else "full");
     Printf.fprintf oc "  \"results\": [\n";
     List.iteri
       (fun i (name, ops, wall, eps, wpo, majors) ->
         Printf.fprintf oc
           "    {\"name\": %S, \"ops\": %d, \"wall_s\": %.4f, \
            \"ops_per_sec\": %.1f, \"minor_words_per_op\": %.1f, \
            \"major_collections\": %d}%s\n"
           name ops wall eps wpo majors
           (if i = List.length results - 1 then "" else ","))
       results;
     Printf.fprintf oc
       "  ],\n\
       \  \"driver_burst_overhead_pct\": %.1f,\n\
       \  \"loadgen_steady_overhead_pct\": %.1f\n\
        }\n"
       burst_pct steady_pct;
     close_out oc;
     Printf.printf "# wrote %s\n" path);
  let failed = ref false in
  let (_, _, _, _, _, csum_majors) =
    List.find
      (fun (name, _, _, _, _, _) -> name = "loadgen-steady-csum")
      results
  in
  if csum_majors <> 0 then begin
    failed := true;
    Printf.eprintf
      "FAIL: checksummed loadgen-steady ran %d major collections (want 0: \
       digest upkeep must stay allocation-free)\n"
      csum_majors
  end;
  if eps_of "driver-burst-csum" < 0.5 *. eps_of "driver-burst-plain" then begin
    failed := true;
    Printf.eprintf
      "FAIL: checksummed driver burst at %+.1f%% overhead is outside the 2x \
       gate\n"
      burst_pct
  end;
  if !failed then exit 1

(* --- compact volume ----------------------------------------------------- *)

(* The claims behind the slab-backed image ({!Su_fstypes.Volume}),
   written to BENCH_volume.json:

   - volume-mkfs: formatting a paper-disk-scale volume (full: 8 GB /
     512 cylinder groups / 1,048,576 inodes on a widened HP C2447;
     quick: 1 GB / 131,072 inodes on the stock drive). Reported: wall
     seconds and minor words per inode. The gate asserts formatting
     allocates O(blocks), not O(inodes): fresh inode blocks share one
     canonical free dinode and encode straight into slabs, so mkfs
     must stay under 64 minor words per inode (one boxed dinode record
     alone costs ~22 words before its block array lands).

   - volume-resident: live major-heap bytes per inode with the
     formatted volume fully resident (measured across Fs.make between
     two full majors), next to the volume's own slab accounting
     (Disk.image_stats). Gate: <= 192 resident bytes per inode — the
     bound that makes a million-inode volume a ~100-200 MB object
     instead of an unbounded record graph.

   - loadgen-bigvol: the multi-tenant load engine running on that
     volume (full: 120,000 clients; quick: 5,000), same steady-window
     report as --loadgen. Gate: steady ops executed > 0. Majors and
     words/op are reported, not gated: past the cache's capacity every
     fill decodes fresh records (exactly the copy_cell cost the boxed
     image paid), so eviction churn allocates proportionally to miss
     traffic at any client count. *)

let volume_geometry ~quick =
  let geom =
    if quick then Su_fstypes.Geom.v ~mb:1024 ~cg_mb:16 ~inodes_per_cg:2048 ()
    else Su_fstypes.Geom.v ~mb:8192 ~cg_mb:16 ~inodes_per_cg:2048 ()
  in
  let params =
    if
      Su_disk.Disk_params.capacity_frags Su_disk.Disk_params.hp_c2447
      >= geom.Su_fstypes.Geom.nfrags
    then Su_disk.Disk_params.hp_c2447
    else
      { Su_disk.Disk_params.hp_c2447 with
        Su_disk.Disk_params.cylinders = 17_000
      }
  in
  (geom, params)

let run_volume ~quick ~json_path =
  let geom, params = volume_geometry ~quick in
  let inodes = Su_fstypes.Geom.total_inodes geom in
  let fs_cfg =
    { (Su_fs.Fs.config ~scheme:Su_fs.Fs.Soft_updates ()) with
      Su_fs.Fs.geom;
      disk_params = params;
      dir_index = true
    }
  in
  (* mkfs + residency: one build, minor words and wall bracketed
     around it, live heap compared between full majors on each side.
     mkfs leaves untouched inode blocks Empty (they materialize on
     first allocation), so the bracket also installs the entire inode
     area — the resident figure is the worst case, every inode block
     encoded, not the sparse freshly-formatted image. *)
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let w = Su_fs.Fs.make fs_cfg in
  let disk = w.Su_fs.Fs.disk in
  for c = 0 to Su_fstypes.Geom.cg_count geom - 1 do
    let first, count = Su_fstypes.Geom.cg_inode_area geom c in
    let fpb = geom.Su_fstypes.Geom.frags_per_block in
    let blk = ref first in
    while !blk < first + count do
      (match Su_disk.Disk.peek disk !blk with
       | Su_fstypes.Types.Empty ->
         Su_disk.Disk.install disk !blk
           (Su_fstypes.Types.Meta (Su_fstypes.Types.fresh_inode_block geom));
         for i = 1 to fpb - 1 do
           Su_disk.Disk.install disk (!blk + i) Su_fstypes.Types.Pad
         done
       | _ -> ());
      blk := !blk + fpb
    done
  done;
  let mkfs_wall = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  let mkfs_wpi =
    (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int inodes
  in
  Gc.full_major ();
  let live1 = (Gc.stat ()).Gc.live_words in
  let bytes_per_inode =
    float_of_int ((live1 - live0) * 8) /. float_of_int inodes
  in
  let st = Su_disk.Disk.image_stats disk in
  let slab_bpi =
    float_of_int st.Su_fstypes.Volume.slab_bytes /. float_of_int inodes
  in
  Printf.printf
    "%-30s inodes=%-8d %8.3fs wall %9.1f mwords/inode\n%!"
    "volume-mkfs" inodes mkfs_wall mkfs_wpi;
  Printf.printf
    "%-30s %9.1f bytes/inode resident (%.1f slab) %6d ino-slabs %6d boxed\n%!"
    "volume-resident" bytes_per_inode slab_bpi
    st.Su_fstypes.Volume.inode_slabs st.Su_fstypes.Volume.boxed;
  Su_fs.Fs.stop w;
  (* the load engine on the big volume *)
  let base = Su_workload.Loadgen.config ~scheme:Su_fs.Fs.Soft_updates () in
  let clients = if quick then 5_000 else 120_000 in
  let lg_cfg =
    { base with
      Su_workload.Loadgen.fs_cfg;
      clients;
      rate = (if quick then 0.2 else 0.02);
      duration = (if quick then 6.0 else 10.0);
      warmup = 2.0;
      files_per_client = 1
    }
  in
  let r = Su_workload.Loadgen.run lg_cfg in
  let ops = r.Su_workload.Loadgen.executed in
  let lg_wall = r.Su_workload.Loadgen.host_wall_s in
  let lg_eps = if lg_wall > 0.0 then float_of_int ops /. lg_wall else 0.0 in
  let lg_wpo =
    r.Su_workload.Loadgen.minor_words /. float_of_int (max 1 ops)
  in
  let lg_majors = r.Su_workload.Loadgen.major_collections in
  Printf.printf
    "%-30s n=%-6d %8.3fs wall %12.0f ops/s %9.1f mwords/op %3d majors \
     (%d clients)\n%!"
    "loadgen-bigvol" ops lg_wall lg_eps lg_wpo lg_majors clients;
  (match json_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Printf.fprintf oc "{\n  \"scale\": \"%s\",\n"
       (if quick then "quick" else "full");
     Printf.fprintf oc
       "  \"mkfs\": {\"inodes\": %d, \"wall_s\": %.4f, \
        \"minor_words_per_inode\": %.2f},\n"
       inodes mkfs_wall mkfs_wpi;
     Printf.fprintf oc
       "  \"resident\": {\"bytes_per_inode\": %.1f, \
        \"slab_bytes_per_inode\": %.1f, \"inode_slabs\": %d, \
        \"dir_slabs\": %d, \"indirect_slabs\": %d, \"boxed\": %d},\n"
       bytes_per_inode slab_bpi st.Su_fstypes.Volume.inode_slabs
       st.Su_fstypes.Volume.dir_slabs st.Su_fstypes.Volume.indirect_slabs
       st.Su_fstypes.Volume.boxed;
     Printf.fprintf oc
       "  \"loadgen\": {\"clients\": %d, \"ops\": %d, \"wall_s\": %.4f, \
        \"ops_per_sec\": %.1f, \"minor_words_per_op\": %.1f, \
        \"major_collections\": %d}\n}\n"
       clients ops lg_wall lg_eps lg_wpo lg_majors;
     close_out oc;
     Printf.printf "# wrote %s\n" path);
  let failed = ref false in
  if mkfs_wpi > 64.0 then begin
    failed := true;
    Printf.eprintf
      "FAIL: mkfs allocated %.1f minor words per inode (want <= 64: \
       formatting must be O(blocks), not O(inodes))\n"
      mkfs_wpi
  end;
  if bytes_per_inode > 192.0 then begin
    failed := true;
    Printf.eprintf
      "FAIL: resident volume costs %.1f bytes per inode (want <= 192)\n"
      bytes_per_inode
  end;
  if ops <= 0 then begin
    failed := true;
    Printf.eprintf "FAIL: loadgen-bigvol executed no steady operations\n"
  end;
  if !failed then exit 1

(* --- main --------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro" args in
  if List.mem "--help" args || List.mem "-h" args then begin
    usage ();
    exit 0
  end;
  if List.mem "--list" args then begin
    List.iter print_endline available;
    exit 0
  end;
  let rec json_of = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> json_of rest
    | [] -> None
  in
  let rec jobs_of = function
    | "--jobs" :: n :: _ ->
      (match int_of_string_opt n with
       | Some j when j >= 0 -> j
       | Some _ | None ->
         Printf.eprintf "bad --jobs value %S (want an int >= 0)\n" n;
         exit 2)
    | _ :: rest -> jobs_of rest
    | [] -> 1
  in
  let jobs = jobs_of args in
  let rec min_eps_of = function
    | "--min-driver-eps" :: n :: _ ->
      (match float_of_string_opt n with
       | Some f when f > 0.0 -> Some f
       | Some _ | None ->
         Printf.eprintf "bad --min-driver-eps value %S (want a number > 0)\n" n;
         exit 2)
    | _ :: rest -> min_eps_of rest
    | [] -> None
  in
  let min_driver_eps = min_eps_of args in
  let rec assert_shapes_of = function
    | "--assert-shapes" :: path :: _ -> Some path
    | _ :: rest -> assert_shapes_of rest
    | [] -> None
  in
  (match assert_shapes_of args with
   | None -> ()
   | Some path ->
     let doc =
       let s =
         try
           let ic = open_in_bin path in
           let s = really_input_string ic (in_channel_length ic) in
           close_in ic;
           s
         with Sys_error e ->
           Printf.eprintf "cannot read %s: %s\n" path e;
           exit 2
       in
       match Su_obs.Json.parse s with
       | Ok doc -> doc
       | Error e ->
         Printf.eprintf "%s: JSON parse error: %s\n" path e;
         exit 2
     in
     let claims = Su_experiments.Shapes.check doc in
     if claims = [] then begin
       Printf.eprintf "%s: no recognisable experiment tables to assert\n" path;
       exit 2
     end;
     let nfail =
       List.fold_left (fun n (_, ok, _) -> if ok then n else n + 1) 0 claims
     in
     List.iter
       (fun (name, ok, detail) ->
         Printf.printf "%-48s %-4s %s\n" name
           (if ok then "ok" else "FAIL")
           detail)
       claims;
     Printf.printf "# %d claims, %d failed\n" (List.length claims) nfail;
     exit (if nfail = 0 then 0 else 1));
  if micro_only then begin
    micro ();
    exit 0
  end;
  if List.mem "--hotpaths" args then begin
    run_hotpaths ~quick ~jobs ~json_path:(json_of args) ~min_driver_eps;
    exit 0
  end;
  if List.mem "--crashsweep" args then begin
    run_crashsweep ~quick ~jobs ~json_path:(json_of args);
    exit 0
  end;
  if List.mem "--loadgen" args then begin
    run_loadgen ~quick ~json_path:(json_of args);
    exit 0
  end;
  if List.mem "--volume" args then begin
    run_volume ~quick ~json_path:(json_of args);
    exit 0
  end;
  if List.mem "--corrupt" args then begin
    run_corrupt ~quick ~json_path:(json_of args);
    exit 0
  end;
  let selected =
    let rec drop_opts = function
      | [] -> []
      | ("--jobs" | "--json" | "--assert-shapes" | "--min-driver-eps")
        :: _ :: rest ->
        drop_opts rest
      | a :: rest ->
        if String.length a > 1 && a.[0] = '-' then drop_opts rest
        else a :: drop_opts rest
    in
    drop_opts args
  in
  (* Fail fast and non-zero on unknown ids, before any experiment
     burns wall clock (scripted runs used to get a stderr line and a
     zero exit). *)
  List.iter
    (fun id ->
      if not (List.mem id available) then begin
        Printf.eprintf "unknown experiment %S (try --list)\n" id;
        exit 2
      end)
    selected;
  let scale = if quick then `Quick else `Full in
  let wanted = if selected = [] then available else selected in
  let t_start = Unix.gettimeofday () in
  Printf.printf
    "# Metadata Update Performance in File Systems (Ganger & Patt, OSDI 94)\n";
  Printf.printf "# simulated reproduction - %s scale\n\n"
    (if quick then "quick" else "full");
  (* Each experiment renders its tables into a buffer inside a pool
     worker; printing happens here, in id order, so output is
     byte-identical at any --jobs value. *)
  let wanted = Array.of_list wanted in
  let rendered =
    Su_util.Pool.map ~jobs (Array.length wanted) (fun i ->
        let id = wanted.(i) in
        match List.assoc_opt id (Su_experiments.Experiments.all scale) with
        | None -> (id, None)
        | Some thunk ->
          let t0 = Unix.gettimeofday () in
          let tables = thunk () in
          let buf = Buffer.create 4096 in
          List.iter
            (fun t -> Buffer.add_string buf (Su_util.Text_table.render t))
            tables;
          (id, Some (Buffer.contents buf, tables, Unix.gettimeofday () -. t0)))
  in
  Array.iter
    (fun (id, outcome) ->
      match outcome with
      | None -> Printf.eprintf "unknown experiment %S (try --list)\n" id
      | Some (text, _, wall) ->
        print_string text;
        Printf.printf "[%s took %.1fs wall]\n\n%!" id wall)
    rendered;
  (match json_of args with
   | None -> ()
   | Some path ->
     let entries =
       Array.to_list rendered
       |> List.filter_map (fun (id, outcome) ->
              Option.map (fun (_, tables, wall) -> (id, wall, tables)) outcome)
     in
     let doc =
       Su_experiments.Shapes.experiments_json
         ~scale:(if quick then "quick" else "full")
         entries
     in
     (try
        let oc = open_out path in
        output_string oc (Su_obs.Json.to_string_pretty doc);
        output_char oc '\n';
        close_out oc;
        Printf.printf "# wrote %s\n" path
      with Sys_error e ->
        Printf.eprintf "cannot write %s: %s\n" path e;
        exit 2));
  Printf.printf "# total wall time: %.1fs\n" (Unix.gettimeofday () -. t_start)
